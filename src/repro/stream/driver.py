"""Out-of-core driver: scan files larger than RAM, resumably.

:func:`scan_file` memory-maps the input, cuts it into ``chunk_bytes``
pieces, and pipelines them through a :class:`ScanSession`
double-buffered: a prefetch thread copies chunk ``i+1`` out of the map
while the session (and its inner engine — e.g. the ``repro.parallel``
worker pool, which stays warm across chunks) scans chunk ``i``.  Peak
resident memory is a few chunks regardless of file size.

Durability: every ``checkpoint_every`` chunks the scanned output is
fsync'd and the session state is written atomically to the checkpoint
path (see :mod:`repro.stream.checkpoint`).  A job that dies — power
loss, OOM kill, ctrl-C — is re-run with ``resume=True``: the driver
validates the checkpoint against the job's configuration hash and the
input's element count, restores the carry state and counters, truncates
the output back to the durable offset (discarding any bytes written
after the last checkpoint), and continues.  The final output is
bit-identical to an uninterrupted run, which is itself bit-identical to
a one-shot scan.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ops import get_op
from repro.stream.checkpoint import (
    build_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.stream.counters import StreamCounters
from repro.stream.errors import (
    CheckpointMismatchError,
    InjectedFailureError,
    StreamError,
)
from repro.stream.session import ScanSession

#: Default chunk budget: big enough that numpy's per-chunk vector work
#: dominates per-chunk overhead, small enough that double-buffering two
#: chunks is negligible against any realistic RAM.
DEFAULT_CHUNK_BYTES = 16 << 20

#: Checkpoint cadence in chunks (k): one durable flush + atomic state
#: write per k chunks bounds re-done work after a crash to k chunks.
DEFAULT_CHECKPOINT_EVERY = 8

#: Adaptive chunk sizing: grow the chunk while a full
#: read-fold-scan-write cycle stays under the low-water seconds (the
#: per-chunk Python overhead is then a measurable fraction), shrink it
#: past the high-water mark (latency per progress report, and the peak
#: memory of a chunk, stay bounded).  Born in the sharded driver; now
#: shared with the single-session :func:`scan_file`.
ADAPT_LOW_SECONDS = 0.05
ADAPT_HIGH_SECONDS = 0.5
ADAPT_MIN_CHUNK_BYTES = 64 << 10
ADAPT_MAX_CHUNK_BYTES = 256 << 20


class _AdaptiveChunker:
    """Chunk sizing driven by the measured per-chunk phase seconds."""

    def __init__(self, elements, itemsize, enabled, counters):
        self.enabled = enabled
        self.counters = counters
        self.min_elements = max(1, ADAPT_MIN_CHUNK_BYTES // itemsize)
        self.max_elements = max(elements, ADAPT_MAX_CHUNK_BYTES // itemsize)
        self.elements = max(1, int(elements))

    def observe(self, seconds: float) -> None:
        if not self.enabled:
            return
        if seconds < ADAPT_LOW_SECONDS and self.elements < self.max_elements:
            self.elements = min(self.max_elements, self.elements * 2)
            self.counters.chunk_resizes += 1
        elif seconds > ADAPT_HIGH_SECONDS and self.elements > self.min_elements:
            self.elements = max(self.min_elements, self.elements // 2)
            self.counters.chunk_resizes += 1


@dataclass
class StreamResult:
    """Outcome of one :func:`scan_file` job."""

    elements: int
    dtype: str
    output_path: str
    counters: StreamCounters
    resumed_from: int = 0

    @property
    def engine_used(self) -> str:
        return self.counters.engine_used


def scan_file(
    input_path,
    output_path,
    *,
    dtype="int32",
    op="add",
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
    engine=None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    checkpoint=None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = False,
    adaptive_chunks: bool = False,
    threads=None,
    fail_after_chunks: Optional[int] = None,
) -> StreamResult:
    """Scan a raw binary file into ``output_path``, out of core.

    Parameters mirror :func:`repro.api.prefix_sum` plus the streaming
    knobs: ``chunk_bytes`` (per-chunk budget), ``checkpoint`` (path for
    durable progress; ``None`` disables), ``checkpoint_every`` (chunks
    between checkpoints), and ``resume`` (continue from an existing
    checkpoint instead of restarting; with no checkpoint file present
    the job simply starts fresh).  ``adaptive_chunks`` enables the
    sharded driver's measured-phase-seconds chunk sizing (off by
    default here: a fixed ``chunk_bytes`` keeps checkpoint cadence and
    chunk counts predictable).  ``threads`` routes per-chunk integer
    stage scans through the slab-parallel in-memory kernel
    (``None`` = serial; an int or ``"auto"`` enables it) — results are
    unchanged either way.  ``fail_after_chunks`` is a test-only hook
    that aborts the job after N chunks to exercise resumption.
    """
    if chunk_bytes < 1:
        raise ValueError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    input_path = os.fspath(input_path)
    output_path = os.fspath(output_path)

    resolved_op = get_op(op)
    resolved_dtype = resolved_op.check_dtype(dtype)
    itemsize = resolved_dtype.itemsize
    input_bytes = os.path.getsize(input_path)
    if input_bytes % itemsize:
        raise ValueError(
            f"{input_path!r} is {input_bytes} bytes, not a multiple of "
            f"{resolved_dtype.name}'s {itemsize}-byte item size"
        )
    total_elements = input_bytes // itemsize
    chunk_elements = max(1, int(chunk_bytes) // itemsize)

    session = ScanSession(
        op=resolved_op,
        order=order,
        tuple_size=tuple_size,
        inclusive=inclusive,
        dtype=resolved_dtype,
        engine=engine,
        threads=threads,
    )

    start_elements = 0
    if resume and checkpoint is not None and os.path.exists(checkpoint):
        start_elements = _restore(session, checkpoint, total_elements, output_path)
    elif checkpoint is not None and os.path.exists(checkpoint):
        # Starting fresh: a leftover checkpoint from a previous job must
        # not survive, or a later crash + resume would restore a stale
        # offset against this job's output and corrupt it silently.
        os.remove(checkpoint)
    counters = session.counters

    if start_elements:
        out_fh = open(output_path, "r+b")
        out_fh.truncate(start_elements * itemsize)
        out_fh.seek(start_elements * itemsize)
    else:
        out_fh = open(output_path, "wb")

    data = (
        np.memmap(input_path, dtype=resolved_dtype, mode="r")
        if total_elements
        else np.empty(0, dtype=resolved_dtype)
    )

    def fetch(lo: int, hi: int):
        t0 = time.perf_counter()
        copied = np.array(data[lo:hi], copy=True)
        return copied, time.perf_counter() - t0

    prefetcher = ThreadPoolExecutor(max_workers=1)
    position = start_elements
    chunks_done = 0
    since_checkpoint = 0
    chunker = _AdaptiveChunker(chunk_elements, itemsize, adaptive_chunks, counters)
    try:
        pending = None
        if position < total_elements:
            pending = prefetcher.submit(
                fetch, position, min(position + chunker.elements, total_elements)
            )
        while position < total_elements:
            chunk, read_seconds = pending.result()
            counters.seconds_read += read_seconds
            next_position = position + len(chunk)
            if next_position < total_elements:
                # The prefetch of chunk i+1 uses the size decided after
                # chunk i-1 — adaptive resizing lags one chunk behind
                # the measurement, which is fine for a damped doubler.
                pending = prefetcher.submit(
                    fetch,
                    next_position,
                    min(next_position + chunker.elements, total_elements),
                )
            t_chunk = time.perf_counter()
            scanned = session.feed(chunk)
            t0 = time.perf_counter()
            # Write the array's buffer directly: tobytes() would copy
            # every scanned chunk a second time on the hot write path.
            if not scanned.flags.c_contiguous:  # pragma: no cover - defensive
                scanned = np.ascontiguousarray(scanned)
            out_fh.write(memoryview(scanned).cast("B"))
            counters.seconds_write += time.perf_counter() - t0
            counters.bytes_out += scanned.nbytes
            chunker.observe(read_seconds + time.perf_counter() - t_chunk)
            position = next_position
            chunks_done += 1
            since_checkpoint += 1
            if (
                checkpoint is not None
                and since_checkpoint >= checkpoint_every
                and position < total_elements
            ):
                _checkpoint(session, checkpoint, total_elements, out_fh)
                since_checkpoint = 0
            if (
                fail_after_chunks is not None
                and chunks_done >= fail_after_chunks
                and position < total_elements
            ):
                raise InjectedFailureError(
                    f"injected failure after {chunks_done} chunks "
                    f"(element {position} of {total_elements})"
                )
        t0 = time.perf_counter()
        out_fh.flush()
        os.fsync(out_fh.fileno())
        counters.seconds_write += time.perf_counter() - t0
    finally:
        out_fh.close()
        prefetcher.shutdown(wait=True, cancel_futures=True)
        if isinstance(data, np.memmap):
            del data

    if checkpoint is not None and os.path.exists(checkpoint):
        os.remove(checkpoint)  # the job is complete; nothing to resume
    return StreamResult(
        elements=total_elements,
        dtype=resolved_dtype.name,
        output_path=output_path,
        counters=counters,
        resumed_from=start_elements,
    )


def _checkpoint(session: ScanSession, path, total_elements: int, out_fh) -> None:
    """Make all output durable, then atomically persist the state."""
    t0 = time.perf_counter()
    out_fh.flush()
    os.fsync(out_fh.fileno())
    session.counters.checkpoint_writes += 1  # count the write being persisted
    payload = build_checkpoint(
        session.state_dict(), total_elements, session.counters.as_dict()
    )
    write_checkpoint(path, payload)
    session.counters.seconds_checkpoint += time.perf_counter() - t0


def _restore(
    session: ScanSession, checkpoint, total_elements: int, output_path: str
) -> int:
    """Load a checkpoint into ``session``; returns the resume offset."""
    payload = read_checkpoint(checkpoint)
    state = payload["session"]
    if state["config_hash"] != session.config_hash():
        # Delegate to load_state_dict for the detailed per-key diff.
        session.load_state_dict(state)
        raise CheckpointMismatchError(  # pragma: no cover - diff raised above
            f"checkpoint {checkpoint!r} belongs to a different configuration"
        )
    if payload["input_elements"] != total_elements:
        raise CheckpointMismatchError(
            f"checkpoint {checkpoint!r} was taken against an input of "
            f"{payload['input_elements']} elements; this input has "
            f"{total_elements}"
        )
    session.load_state_dict(state)
    restored = StreamCounters.from_dict(payload.get("counters", {}))
    restored.resumes += 1
    restored.engine_used = session.counters.engine_used
    session.counters = restored
    offset = session.offset
    if offset and not os.path.exists(output_path):
        raise StreamError(
            f"cannot resume: checkpoint says {offset} elements are done "
            f"but output file {output_path!r} does not exist"
        )
    if offset and os.path.getsize(output_path) < offset * session.dtype.itemsize:
        raise StreamError(
            f"cannot resume: output file {output_path!r} is shorter than "
            f"the checkpointed offset ({offset} elements); the checkpoint "
            f"and output are out of sync"
        )
    return offset
