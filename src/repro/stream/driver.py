"""Out-of-core driver: scan files larger than RAM, resumably.

:func:`scan_file` memory-maps the input, cuts it into ``chunk_bytes``
pieces, and pipelines them through a :class:`ScanSession`
double-buffered: a prefetch thread copies chunk ``i+1`` out of the map
while the session (and its inner engine — e.g. the ``repro.parallel``
worker pool, which stays warm across chunks) scans chunk ``i``.  Peak
resident memory is a few chunks regardless of file size.

Compressed streaming: the input and/or output may be a blocked
``.samb`` container (:mod:`repro.compression.stream`) instead of raw
bytes — ``input_format="blocked"`` (or ``"auto"``, which sniffs the
magic) and ``output_format="blocked"``.  Decode, scan, and encode are
*fused* per chunk: the prefetch thread decodes container blocks while
the main thread scans the previous chunk and feeds the scanned values
straight into the incremental container writer — each block is touched
once, while hot, and the bytes crossing the disk are the compressed
ones.  Chunk boundaries are aligned to the least common multiple of
the input and output block sizes so every checkpoint lands on a block
boundary; the checkpoint then records the container cursor alongside
the session state, keeping crash-resume bit-identical in every format
combination.

Durability: every ``checkpoint_every`` chunks the scanned output is
fsync'd and the session state is written atomically to the checkpoint
path (see :mod:`repro.stream.checkpoint`).  A job that dies — power
loss, OOM kill, ctrl-C — is re-run with ``resume=True``: the driver
validates the checkpoint against the job's configuration hash and the
input's element count, restores the carry state and counters, truncates
the output back to the durable offset (discarding any bytes written
after the last checkpoint), and continues.  The final output is
bit-identical to an uninterrupted run, which is itself bit-identical to
a one-shot scan.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.compression.stream import (
    BlockedFileReader,
    BlockedStreamWriter,
    is_blocked_file,
)
from repro.ops import get_op
from repro.stream.checkpoint import (
    build_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.stream.counters import StreamCounters
from repro.stream.errors import (
    CheckpointMismatchError,
    InjectedFailureError,
    StreamError,
)
from repro.stream.session import ScanSession

INPUT_FORMATS = ("auto", "raw", "blocked")
OUTPUT_FORMATS = ("raw", "blocked")

#: Default chunk budget: big enough that numpy's per-chunk vector work
#: dominates per-chunk overhead, small enough that double-buffering two
#: chunks is negligible against any realistic RAM.
DEFAULT_CHUNK_BYTES = 16 << 20

#: Checkpoint cadence in chunks (k): one durable flush + atomic state
#: write per k chunks bounds re-done work after a crash to k chunks.
DEFAULT_CHECKPOINT_EVERY = 8

#: Adaptive chunk sizing: grow the chunk while a full
#: read-fold-scan-write cycle stays under the low-water seconds (the
#: per-chunk Python overhead is then a measurable fraction), shrink it
#: past the high-water mark (latency per progress report, and the peak
#: memory of a chunk, stay bounded).  Born in the sharded driver; now
#: shared with the single-session :func:`scan_file`.
ADAPT_LOW_SECONDS = 0.05
ADAPT_HIGH_SECONDS = 0.5
ADAPT_MIN_CHUNK_BYTES = 64 << 10
ADAPT_MAX_CHUNK_BYTES = 256 << 20


class _AdaptiveChunker:
    """Chunk sizing driven by the measured per-chunk phase seconds."""

    def __init__(self, elements, itemsize, enabled, counters):
        self.enabled = enabled
        self.counters = counters
        self.min_elements = max(1, ADAPT_MIN_CHUNK_BYTES // itemsize)
        self.max_elements = max(elements, ADAPT_MAX_CHUNK_BYTES // itemsize)
        self.elements = max(1, int(elements))

    def observe(self, seconds: float) -> None:
        if not self.enabled:
            return
        if seconds < ADAPT_LOW_SECONDS and self.elements < self.max_elements:
            self.elements = min(self.max_elements, self.elements * 2)
            self.counters.chunk_resizes += 1
        elif seconds > ADAPT_HIGH_SECONDS and self.elements > self.min_elements:
            self.elements = max(self.min_elements, self.elements // 2)
            self.counters.chunk_resizes += 1


@dataclass
class StreamResult:
    """Outcome of one :func:`scan_file` job."""

    elements: int
    dtype: str
    output_path: str
    counters: StreamCounters
    resumed_from: int = 0
    input_format: str = "raw"
    output_format: str = "raw"

    @property
    def engine_used(self) -> str:
        return self.counters.engine_used


def _aligned_take(elements: int, align: int, stride: int) -> int:
    """Round a chunk size down to the preferred ``stride`` when it
    fits, else to the required ``align`` (never below one unit)."""
    if stride <= elements:
        return elements - elements % stride
    return max(align, elements - elements % align)


def resolve_input_format(input_path, input_format: str) -> str:
    """``"auto"`` sniffs the blocked-container magic; explicit formats
    pass through (``"blocked"`` is still validated by the reader)."""
    if input_format not in INPUT_FORMATS:
        raise ValueError(
            f"input_format must be one of {INPUT_FORMATS}, got {input_format!r}"
        )
    if input_format == "auto":
        return "blocked" if is_blocked_file(input_path) else "raw"
    return input_format


class _RawOutput:
    """Raw-bytes output sink: plain file writes, fsync on sync."""

    def __init__(self, path: str, resume_offset: int, itemsize: int):
        if resume_offset:
            self.fh = open(path, "r+b")
            self.fh.truncate(resume_offset * itemsize)
            self.fh.seek(resume_offset * itemsize)
        else:
            self.fh = open(path, "wb")

    def write(self, scanned: np.ndarray) -> float:
        # Write the array's buffer directly: tobytes() would copy
        # every scanned chunk a second time on the hot write path.
        if not scanned.flags.c_contiguous:  # pragma: no cover - defensive
            scanned = np.ascontiguousarray(scanned)
        self.fh.write(memoryview(scanned).cast("B"))
        return 0.0

    def sync(self):
        self.fh.flush()
        os.fsync(self.fh.fileno())

    def io_state(self):
        return None

    def finish(self):
        self.sync()

    def close(self):
        self.fh.close()


class _BlockedOutput:
    """Blocked-container output sink: scanned chunks are encoded into
    container blocks as they are produced (the encode half of the fused
    pipeline).  Reports encode seconds and container-byte growth back
    to the caller's counters via :meth:`write`'s return value."""

    def __init__(self, writer: BlockedStreamWriter, counters: StreamCounters):
        self.writer = writer
        self.counters = counters
        self._bytes_seen = writer.container_bytes

    def _account(self) -> float:
        grown = self.writer.container_bytes - self._bytes_seen
        self._bytes_seen = self.writer.container_bytes
        self.counters.compressed_bytes_out += grown
        encode = self.writer.encode_seconds
        self.writer.encode_seconds = 0.0
        self.counters.seconds_encode += encode
        return encode

    def write(self, scanned: np.ndarray) -> float:
        self.writer.feed(scanned)
        return self._account()

    def sync(self):
        self.writer.sync()

    def io_state(self):
        return self.writer.state()

    def finish(self):
        self.writer.finalize()
        self._account()
        # The header+index region reserved ahead of the payloads only
        # becomes real container bytes when finalize fills it in; count
        # it exactly once, here (payload growth is counted per write).
        self.counters.compressed_bytes_out += self.writer.data_offset

    def close(self):
        self.writer.close()


def scan_file(
    input_path,
    output_path,
    *,
    dtype="int32",
    op="add",
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
    engine=None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    checkpoint=None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = False,
    adaptive_chunks: bool = False,
    threads=None,
    float_mode: Optional[str] = None,
    input_format: str = "auto",
    output_format: str = "raw",
    output_block_elements: Optional[int] = None,
    output_codec_order: Optional[int] = None,
    fail_after_chunks: Optional[int] = None,
) -> StreamResult:
    """Scan a binary file into ``output_path``, out of core.

    Parameters mirror :func:`repro.api.prefix_sum` plus the streaming
    knobs: ``chunk_bytes`` (per-chunk budget), ``checkpoint`` (path for
    durable progress; ``None`` disables), ``checkpoint_every`` (chunks
    between checkpoints), and ``resume`` (continue from an existing
    checkpoint instead of restarting; with no checkpoint file present
    the job simply starts fresh).  ``adaptive_chunks`` enables the
    sharded driver's measured-phase-seconds chunk sizing (off by
    default here: a fixed ``chunk_bytes`` keeps checkpoint cadence and
    chunk counts predictable).  ``threads`` routes per-chunk integer
    stage scans through the slab-parallel in-memory kernel
    (``None`` = serial; an int or ``"auto"`` enables it) — results are
    unchanged either way.  ``float_mode`` picks the session's float
    handling (``"exact"``, ``"compensated"``, or ``"regrouped"``; see
    :class:`repro.stream.ScanSession`); ``None`` keeps the default
    bit-exact sequential float path.

    ``input_format`` accepts raw bytes or a blocked ``.samb`` container
    (``"auto"``, the default, sniffs the magic); a blocked input's
    dtype and length come from its header, overriding ``dtype``.
    ``output_format="blocked"`` writes the scanned values as a blocked
    container (``output_block_elements`` elements per block;
    ``output_codec_order=None`` auto-selects the delta order per
    block), fused into the same loop.  ``fail_after_chunks`` is a
    test-only hook that aborts the job after N chunks to exercise
    resumption.
    """
    if chunk_bytes < 1:
        raise ValueError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if output_format not in OUTPUT_FORMATS:
        raise ValueError(
            f"output_format must be one of {OUTPUT_FORMATS}, got {output_format!r}"
        )
    input_path = os.fspath(input_path)
    output_path = os.fspath(output_path)
    input_format = resolve_input_format(input_path, input_format)

    resolved_op = get_op(op)
    reader = None
    if input_format == "blocked":
        reader = BlockedFileReader(input_path)
        # The container header is authoritative for the input's dtype
        # and element count; ``dtype`` only applies to raw inputs.
        resolved_dtype = resolved_op.check_dtype(reader.dtype)
        itemsize = resolved_dtype.itemsize
        total_elements = reader.count
        in_block = reader.block_elements
    else:
        resolved_dtype = resolved_op.check_dtype(dtype)
        itemsize = resolved_dtype.itemsize
        input_bytes = os.path.getsize(input_path)
        if input_bytes % itemsize:
            raise ValueError(
                f"{input_path!r} is {input_bytes} bytes, not a multiple of "
                f"{resolved_dtype.name}'s {itemsize}-byte item size"
            )
        total_elements = input_bytes // itemsize
        in_block = 1

    out_block = 1
    codec_tuple = tuple_size if 1 <= tuple_size <= 255 else 1
    if output_format == "blocked":
        if resolved_dtype not in (np.dtype(np.int32), np.dtype(np.int64)):
            raise ValueError(
                f"blocked output supports int32/int64, not {resolved_dtype}"
            )
        from repro.compression.blocked import align_block_elements

        out_block = align_block_elements(
            int(output_block_elements or 65536), codec_tuple
        )

    # Chunk ends must align to the *output* block size so the writer's
    # tail buffer is empty whenever a checkpoint lands (the reader can
    # seek to any element, so input blocks impose no requirement —
    # aligning to their lcm as well is purely an efficiency preference,
    # taken only when it fits in the chunk budget, since it stops
    # adjacent chunks from decoding a shared input block twice).
    align = out_block
    stride = math.lcm(in_block, out_block)
    chunk_elements = _aligned_take(
        max(1, int(chunk_bytes) // itemsize), align, stride
    )

    session = ScanSession(
        op=resolved_op,
        order=order,
        tuple_size=tuple_size,
        inclusive=inclusive,
        dtype=resolved_dtype,
        engine=engine,
        threads=threads,
        float_mode=float_mode,
    )

    start_elements = 0
    writer_state = None
    if resume and checkpoint is not None and os.path.exists(checkpoint):
        start_elements, writer_state = _restore(
            session, checkpoint, total_elements, output_path,
            input_format=input_format, output_format=output_format,
            align=align, out_block=out_block,
        )
    elif checkpoint is not None and os.path.exists(checkpoint):
        # Starting fresh: a leftover checkpoint from a previous job must
        # not survive, or a later crash + resume would restore a stale
        # offset against this job's output and corrupt it silently.
        os.remove(checkpoint)
    counters = session.counters

    if output_format == "blocked":
        if start_elements:
            writer = BlockedStreamWriter.resume(
                output_path, dtype=resolved_dtype, total_count=total_elements,
                state=writer_state, tuple_size=codec_tuple,
                block_elements=out_block, order=output_codec_order,
            )
        else:
            writer = BlockedStreamWriter(
                output_path, dtype=resolved_dtype, total_count=total_elements,
                tuple_size=codec_tuple, block_elements=out_block,
                order=output_codec_order,
            )
        sink = _BlockedOutput(writer, counters)
    else:
        sink = _RawOutput(output_path, start_elements, itemsize)

    data = None
    if input_format == "raw":
        data = (
            np.memmap(input_path, dtype=resolved_dtype, mode="r")
            if total_elements
            else np.empty(0, dtype=resolved_dtype)
        )

    io_record = None
    if input_format == "blocked" or output_format == "blocked":
        io_record = {
            "input_format": input_format,
            "output_format": output_format,
        }
        if input_format == "blocked":
            io_record["input_block_elements"] = in_block
        if output_format == "blocked":
            io_record["output_block_elements"] = out_block

    def fetch(lo: int, hi: int):
        """Read (and, for blocked input, decode — the fused decode half
        runs in the prefetch thread, overlapping the main thread's
        scan) one chunk.  Returns timings split so decode seconds and
        compressed bytes are attributed separately from raw IO."""
        t0 = time.perf_counter()
        if reader is not None:
            decode0 = reader.decode_seconds
            payload0 = reader.payload_bytes_read
            copied = reader.read_range(lo, hi)
            elapsed = time.perf_counter() - t0
            decode = reader.decode_seconds - decode0
            return (
                copied,
                max(0.0, elapsed - decode),
                decode,
                reader.payload_bytes_read - payload0,
            )
        copied = np.array(data[lo:hi], copy=True)
        return copied, time.perf_counter() - t0, 0.0, 0

    prefetcher = ThreadPoolExecutor(max_workers=1)
    position = start_elements
    chunks_done = 0
    since_checkpoint = 0
    chunker = _AdaptiveChunker(chunk_elements, itemsize, adaptive_chunks, counters)

    def take() -> int:
        return _aligned_take(chunker.elements, align, stride)

    try:
        pending = None
        if position < total_elements:
            pending = prefetcher.submit(
                fetch, position, min(position + take(), total_elements)
            )
        while position < total_elements:
            chunk, read_seconds, decode_seconds, payload_bytes = pending.result()
            counters.seconds_read += read_seconds
            counters.seconds_decode += decode_seconds
            counters.compressed_bytes_in += payload_bytes
            if reader is not None:
                counters.decoded_bytes_in += chunk.nbytes
            next_position = position + len(chunk)
            if next_position < total_elements:
                # The prefetch of chunk i+1 uses the size decided after
                # chunk i-1 — adaptive resizing lags one chunk behind
                # the measurement, which is fine for a damped doubler.
                pending = prefetcher.submit(
                    fetch,
                    next_position,
                    min(next_position + take(), total_elements),
                )
            t_chunk = time.perf_counter()
            scanned = session.feed(chunk)
            t0 = time.perf_counter()
            encode_seconds = sink.write(scanned)
            counters.seconds_write += time.perf_counter() - t0 - encode_seconds
            counters.bytes_out += scanned.nbytes
            chunker.observe(read_seconds + time.perf_counter() - t_chunk)
            position = next_position
            chunks_done += 1
            since_checkpoint += 1
            if (
                checkpoint is not None
                and since_checkpoint >= checkpoint_every
                and position < total_elements
            ):
                _checkpoint(session, checkpoint, total_elements, sink, io_record)
                since_checkpoint = 0
            if (
                fail_after_chunks is not None
                and chunks_done >= fail_after_chunks
                and position < total_elements
            ):
                raise InjectedFailureError(
                    f"injected failure after {chunks_done} chunks "
                    f"(element {position} of {total_elements})"
                )
        t0 = time.perf_counter()
        sink.finish()
        counters.seconds_write += time.perf_counter() - t0
    finally:
        sink.close()
        prefetcher.shutdown(wait=True, cancel_futures=True)
        if reader is not None:
            reader.close()
        if isinstance(data, np.memmap):
            del data

    if checkpoint is not None and os.path.exists(checkpoint):
        os.remove(checkpoint)  # the job is complete; nothing to resume
    return StreamResult(
        elements=total_elements,
        dtype=resolved_dtype.name,
        output_path=output_path,
        counters=counters,
        resumed_from=start_elements,
        input_format=input_format,
        output_format=output_format,
    )


def _checkpoint(
    session: ScanSession, path, total_elements: int, sink, io_record
) -> None:
    """Make all output durable, then atomically persist the state."""
    t0 = time.perf_counter()
    sink.sync()
    session.counters.checkpoint_writes += 1  # count the write being persisted
    io = None
    if io_record is not None:
        io = dict(io_record)
        writer_state = sink.io_state()
        if writer_state is not None:
            io["writer"] = writer_state
    payload = build_checkpoint(
        session.state_dict(), total_elements, session.counters.as_dict(), io=io
    )
    write_checkpoint(path, payload)
    session.counters.seconds_checkpoint += time.perf_counter() - t0


def _restore(
    session: ScanSession,
    checkpoint,
    total_elements: int,
    output_path: str,
    *,
    input_format: str = "raw",
    output_format: str = "raw",
    align: int = 1,
    out_block: int = 1,
):
    """Load a checkpoint into ``session``; returns the resume offset
    and the blocked writer's cursor (``None`` for raw output)."""
    payload = read_checkpoint(checkpoint)
    state = payload["session"]
    if state["config_hash"] != session.config_hash():
        # Delegate to load_state_dict for the detailed per-key diff.
        session.load_state_dict(state)
        raise CheckpointMismatchError(  # pragma: no cover - diff raised above
            f"checkpoint {checkpoint!r} belongs to a different configuration"
        )
    if payload["input_elements"] != total_elements:
        raise CheckpointMismatchError(
            f"checkpoint {checkpoint!r} was taken against an input of "
            f"{payload['input_elements']} elements; this input has "
            f"{total_elements}"
        )
    io = payload.get("io") or {}
    stored_in = io.get("input_format", "raw")
    stored_out = io.get("output_format", "raw")
    if stored_in != input_format or stored_out != output_format:
        raise CheckpointMismatchError(
            f"checkpoint {checkpoint!r} was taken with formats "
            f"{stored_in}->{stored_out}; this job runs "
            f"{input_format}->{output_format}"
        )
    session.load_state_dict(state)
    restored = StreamCounters.from_dict(payload.get("counters", {}))
    restored.resumes += 1
    restored.engine_used = session.counters.engine_used
    session.counters = restored
    offset = session.offset
    if offset % align:
        raise CheckpointMismatchError(
            f"checkpoint offset {offset} is not aligned to the container "
            f"block size {align}; the checkpoint belongs to a different "
            f"container geometry"
        )
    writer_state = None
    if output_format == "blocked":
        stored_block = io.get("output_block_elements")
        if stored_block is not None and stored_block != out_block:
            raise CheckpointMismatchError(
                f"checkpoint {checkpoint!r} wrote {stored_block}-element "
                f"output blocks; this job is configured for {out_block}"
            )
        writer_state = io.get("writer")
        if offset and not isinstance(writer_state, dict):
            raise CheckpointMismatchError(
                f"checkpoint {checkpoint!r} lacks the blocked writer cursor"
            )
        if offset and writer_state.get("blocks_written") != offset // out_block:
            raise CheckpointMismatchError(
                f"checkpoint {checkpoint!r} writer cursor "
                f"({writer_state.get('blocks_written')} blocks) disagrees "
                f"with the session offset ({offset} elements)"
            )
        if not offset:
            writer_state = None
    if offset and not os.path.exists(output_path):
        raise StreamError(
            f"cannot resume: checkpoint says {offset} elements are done "
            f"but output file {output_path!r} does not exist"
        )
    if (
        offset
        and output_format == "raw"
        and os.path.getsize(output_path) < offset * session.dtype.itemsize
    ):
        raise StreamError(
            f"cannot resume: output file {output_path!r} is shorter than "
            f"the checkpointed offset ({offset} elements); the checkpoint "
            f"and output are out of sync"
        )
    return offset, writer_state
