"""Typed errors for the streaming subsystem.

Mirrors :mod:`repro.parallel.errors`: callers can catch the base class
to handle any streaming failure, or the specific subclasses to react
differently to checkpoint problems vs. runtime failures.
"""

from __future__ import annotations


class StreamError(RuntimeError):
    """Base class for all streaming-scan failures."""


class SessionStateError(StreamError):
    """A session was asked to do something its state forbids
    (e.g. snapshot before the dtype is known, feed a mismatched dtype).
    """


class CheckpointError(StreamError):
    """A checkpoint file is unreadable, corrupt, or structurally wrong."""


class CheckpointMismatchError(CheckpointError):
    """A checkpoint is valid but belongs to a *different* job
    (different scan configuration or different input file).
    """


class InjectedFailureError(StreamError):
    """Raised by the test-only failure-injection hook to simulate a job
    being killed mid-run (the process aborts between checkpoints).
    """
