"""Segmented scans via operator lifting.

Segmented scans (Blelloch [1]; Sengupta et al. [24] built the first
CUDA implementation) restart the scan at segment boundaries.  The
classic construction lifts any associative operator ``op`` to pairs
``(flag, value)`` with

    (f1, v1) . (f2, v2) = (f1 | f2,  v2           if f2
                                     op(v1, v2)   otherwise)

which is associative, so every scan engine in this reproduction can run
it unchanged.  To keep the engines' flat-numeric-array interface, the
pair is *packed into a wider integer*: the flag occupies the top bit,
the value the low bits.  This mirrors how GPU implementations pack
head flags into value words to save bandwidth.

``pack``/``unpack`` convert between (values, flags) and the packed
representation; :func:`make_segmented_op` builds the lifted
:class:`AssociativeOp`.  For invertible operators there is also a much
faster subtraction trick — see :mod:`repro.apps.segmented`.
"""

from __future__ import annotations

import numpy as np

from repro.ops.dtypes import as_dtype
from repro.ops.operators import AssociativeOp, get_op

#: Packed dtype for each value dtype (value width doubles so the flag
#: bit and sign handling never collide with the payload).
_PACKED = {
    np.dtype(np.int32): np.dtype(np.int64),
    np.dtype(np.uint32): np.dtype(np.uint64),
}

_FLAG_BIT = {
    np.dtype(np.int64): np.int64(1) << np.int64(62),
    np.dtype(np.uint64): np.uint64(1) << np.uint64(62),
}


def packed_dtype(value_dtype) -> np.dtype:
    """The packed dtype that carries (flag, value) for ``value_dtype``."""
    value_dtype = as_dtype(value_dtype)
    if value_dtype not in _PACKED:
        raise TypeError(
            f"segmented packing supports int32/uint32 values, got {value_dtype}"
        )
    return _PACKED[value_dtype]


def pack(values: np.ndarray, flags: np.ndarray) -> np.ndarray:
    """Pack (values, head-flags) into a single wide-integer array.

    The value is stored in the low 32 bits (two's complement), the flag
    in bit 62; bit 63 stays clear so signed packed arrays never look
    negative and survive every engine's dtype checks.
    """
    values = np.asarray(values)
    flags = np.asarray(flags).astype(bool)
    if values.shape != flags.shape:
        raise ValueError(
            f"values and flags must align: {values.shape} vs {flags.shape}"
        )
    wide = packed_dtype(values.dtype)
    # Low 32 bits: the value's two's-complement pattern; bit 62: flag.
    payload = values.astype(np.int64).view(np.uint64) & np.uint64(0xFFFFFFFF)
    packed = payload.astype(wide) | (_FLAG_BIT[wide] * flags.astype(wide))
    return packed.astype(wide)


def unpack(packed: np.ndarray, value_dtype):
    """Inverse of :func:`pack`: returns ``(values, flags)``."""
    packed = np.asarray(packed)
    value_dtype = as_dtype(value_dtype)
    wide = packed_dtype(value_dtype)
    if packed.dtype != wide:
        raise TypeError(f"expected packed dtype {wide}, got {packed.dtype}")
    flag_bit = _FLAG_BIT[wide]
    flags = (packed & flag_bit) != 0
    payload = (packed.astype(np.uint64) & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    if value_dtype == np.int32:
        values = payload.view(np.int32)
    else:
        values = payload
    return values.copy(), flags


def make_segmented_op(base_op, value_dtype) -> AssociativeOp:
    """Lift ``base_op`` on ``value_dtype`` to a segmented packed operator.

    The result is a plain :class:`AssociativeOp` over the packed wide
    integers, usable with every engine (SAM, baselines, host, serial).
    """
    base_op = get_op(base_op)
    value_dtype = as_dtype(value_dtype)
    wide = packed_dtype(value_dtype)
    flag_bit = _FLAG_BIT[wide]

    def combine(left, right):
        left = np.asarray(left, dtype=wide)
        right = np.asarray(right, dtype=wide)
        lv, lf = unpack(left, value_dtype)
        rv, rf = unpack(right, value_dtype)
        merged = np.where(rf, rv, base_op.apply(lv, rv)).astype(value_dtype)
        return pack(merged, lf | rf)

    def identity_fn(dtype):
        identity_value = base_op.identity(value_dtype)
        return pack(
            np.asarray([identity_value], dtype=value_dtype),
            np.asarray([False]),
        )[0]

    return AssociativeOp(
        f"segmented_{base_op.name}",
        fn=combine,
        identity_fn=identity_fn,
        commutative=False,
    )
