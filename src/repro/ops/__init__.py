"""Associative-operator algebra for prefix scans.

A prefix *scan* generalizes the prefix *sum* to any binary associative
operator (Section 1 of the paper).  This package defines the operator
abstraction used by every scan engine in the reproduction: the serial
reference, the fast host implementations, the SAM kernel running on the
GPU simulator, and all baselines.

The public surface:

``AssociativeOp``
    An operator with an identity element, a vectorized ``apply``, an
    optional vectorized ``accumulate`` (running scan along an axis), and
    dtype-aware semantics (e.g. wraparound for fixed-width integers).

``ADD``, ``MAX``, ``MIN``, ``XOR``, ``BITAND``, ``BITOR``, ``MUL``
    The built-in operators evaluated by the paper (Section 6 mentions
    max and xor explicitly).

``get_op``
    Resolve an operator by name or pass an ``AssociativeOp`` through.
"""

from repro.ops.dtypes import (
    DTYPES,
    SUPPORTED_DTYPE_NAMES,
    as_dtype,
    is_integer_dtype,
    wraparound,
)
from repro.ops.eft import (
    NEG_ZERO,
    canonicalize_errors,
    dd_add,
    two_sum,
    two_sum_err,
)
from repro.ops.operators import (
    ADD,
    BITAND,
    BITOR,
    BUILTIN_OPS,
    MAX,
    MIN,
    MUL,
    XOR,
    AssociativeOp,
    get_op,
)

__all__ = [
    "ADD",
    "BITAND",
    "BITOR",
    "BUILTIN_OPS",
    "DTYPES",
    "MAX",
    "MIN",
    "MUL",
    "NEG_ZERO",
    "SUPPORTED_DTYPE_NAMES",
    "XOR",
    "AssociativeOp",
    "as_dtype",
    "canonicalize_errors",
    "dd_add",
    "get_op",
    "is_integer_dtype",
    "two_sum",
    "two_sum_err",
    "wraparound",
]
