"""Data-type semantics shared by all scan engines.

The paper evaluates prefix sums over 32-bit and 64-bit integers and
states that SAM works for other data types as well.  GPU integer
arithmetic wraps around on overflow, and every engine in this
reproduction must agree bit-for-bit with the serial reference, so the
wraparound behaviour is centralized here.

numpy integer arrays already wrap on overflow; the helpers below make
that behaviour explicit and keep Python-int intermediates (as produced
by ``int.__add__`` in scalar code paths) consistent with it.
"""

from __future__ import annotations

import numpy as np

#: The dtypes the evaluation sweeps over (Figures 3-16 use i32 and i64;
#: the float dtypes support the pseudo-associative discussion in §3.1).
DTYPES = {
    "int32": np.dtype(np.int32),
    "int64": np.dtype(np.int64),
    "uint32": np.dtype(np.uint32),
    "uint64": np.dtype(np.uint64),
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}

SUPPORTED_DTYPE_NAMES = tuple(sorted(DTYPES))

_INT_BITS = {
    np.dtype(np.int32): 32,
    np.dtype(np.int64): 64,
    np.dtype(np.uint32): 32,
    np.dtype(np.uint64): 64,
}


def as_dtype(dtype) -> np.dtype:
    """Resolve a dtype name or numpy dtype to a supported ``np.dtype``.

    Raises ``TypeError`` for dtypes outside the supported set so that
    engines fail fast instead of silently producing mixed-precision
    results.
    """
    if isinstance(dtype, str):
        if dtype not in DTYPES:
            raise TypeError(
                f"unsupported dtype {dtype!r}; expected one of {SUPPORTED_DTYPE_NAMES}"
            )
        return DTYPES[dtype]
    resolved = np.dtype(dtype)
    if resolved not in DTYPES.values():
        raise TypeError(
            f"unsupported dtype {resolved}; expected one of {SUPPORTED_DTYPE_NAMES}"
        )
    return resolved


def is_integer_dtype(dtype) -> bool:
    """True when ``dtype`` is one of the fixed-width integer dtypes."""
    return as_dtype(dtype) in _INT_BITS


def wraparound(value, dtype) -> int:
    """Reduce a Python integer to the two's-complement range of ``dtype``.

    Serial reference code accumulates in Python ints (arbitrary
    precision); this folds the result back into the fixed-width lattice
    that the vectorized engines produce natively.  Float dtypes pass
    through a numpy cast instead.
    """
    resolved = as_dtype(dtype)
    if resolved not in _INT_BITS:
        return resolved.type(value)
    bits = _INT_BITS[resolved]
    mask = (1 << bits) - 1
    value &= mask
    if resolved.kind == "i" and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return resolved.type(value)
