"""Error-free transformations (EFTs) for compensated float scans.

Floating-point addition is only pseudo-associative: ``fl(a + b)``
discards a rounding error, so regrouping a float reduction — the trick
every parallel path in this repo is built on — changes results.  The
error it discards is, however, itself a representable float, and
Knuth's *two-sum* recovers it exactly with six rounded operations:

    s   = fl(a + b)
    err = (a - (s - (s - a))) + (b - (s - a))     # exact: a + b == s + err

``s + err == a + b`` holds *exactly* (round-to-nearest, any magnitudes,
denormals included).  Carrying ``(s, err)`` pairs — a double-double
accumulator — instead of bare floats is what lets the compensated scan
mode (:mod:`repro.kernels.compensated`) regroup float work across
slabs, shards, and batches while staying deterministic and *more*
accurate than the naive serial fold.

Everything here is branch-free and elementwise, so it vectorizes over
numpy arrays of any shape; all functions preserve the input dtype
(float32 chains compensate in float32).

The canonical zero
------------------

``-0.0`` is the true additive identity of IEEE floats under
round-to-nearest: ``fl(x + (-0.0)) == x`` *bit for bit* for every x,
including ``-0.0`` itself — whereas ``fl(-0.0 + 0.0) == +0.0``.  The
compensated carry state therefore uses ``-0.0`` as its canonical zero
(:data:`NEG_ZERO`), and :func:`dd_add` / :func:`canonicalize_errors`
re-normalize exact-zero results back to it, which is what makes a
zero carry fold a bitwise no-op and preserves ``-0.0`` outputs.
"""

from __future__ import annotations

import numpy as np

#: The canonical zero of compensated carry state: the IEEE additive
#: identity (``fl(x + -0.0) == x`` exactly, signed zeros included).
NEG_ZERO = -0.0


def two_sum(a, b):
    """Knuth's branch-free 2Sum: ``(s, err)`` with ``a + b == s + err``.

    Exact for any two floats of the same dtype (no magnitude ordering
    required, unlike fast-two-sum); elementwise over arrays.
    """
    with np.errstate(invalid="ignore"):  # inf - inf poisons to NaN by design
        s = a + b
        bv = s - a
        err = (a - (s - bv)) + (b - bv)
    return s, err


def two_sum_err(a, b, s):
    """The error term of :func:`two_sum` when ``s = fl(a + b)`` is
    already known — e.g. recovered from a naive running scan, where
    ``a`` is the previous partial, ``b`` the new element, and ``s`` the
    scanned value.  Elementwise; four subtractions and one add.
    """
    with np.errstate(invalid="ignore"):  # inf - inf poisons to NaN by design
        bv = s - a
        return (a - (s - bv)) + (b - bv)


def canonicalize_errors(err: np.ndarray) -> np.ndarray:
    """Re-normalize exact-zero error terms to the canonical ``-0.0``.

    Error chains must stay bitwise inert while they are zero: a ``+0.0``
    error folded into a ``-0.0`` running value would flip its sign bit
    and break the zero-carry-is-identity property.  In place; NaNs (a
    poisoned chain) compare unequal to zero and pass through.
    """
    err[err == 0] = NEG_ZERO
    return err


def dd_add(hi, lo, t, f=None):
    """Accumulate ``t`` (+ optional error part ``f``) into the
    double-double ``(hi, lo)``; returns the new ``(hi, lo)``.

    The splice primitive of the compensated scan: ``hi`` carries the
    running value, ``lo`` the running compensation.  One exact
    :func:`two_sum` captures the error of the value add; the low parts
    fold naively (their own rounding is second-order); a final
    :func:`two_sum` re-normalizes so ``lo`` stays tiny relative to
    ``hi``.  Exact-zero results re-canonicalize to ``-0.0`` so a zero
    carry remains a bitwise identity.  Elementwise over arrays.
    """
    s1, e1 = two_sum(hi, t)
    with np.errstate(invalid="ignore"):  # poisoned chains fold to NaN
        g = (lo + f) + e1 if f is not None else lo + e1
    hi2, lo2 = two_sum(s1, g)
    zero = (hi2 == 0) & (lo2 == 0)
    if zero.any() if isinstance(zero, np.ndarray) else zero:
        if isinstance(hi2, np.ndarray):
            hi2[zero] = NEG_ZERO
            lo2[zero] = NEG_ZERO
        else:
            hi2 = np.copysign(hi2 * 0, -1.0)
            lo2 = hi2
    return hi2, lo2
