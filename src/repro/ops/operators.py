"""Binary associative operators for prefix scans.

Section 1 of the paper: "Prefix sums have been generalized before to
work with arbitrary binary associative operations instead of just with
sums.  That generalization is called a prefix scan."  Section 6 reports
that the authors also ran SAM with ``max`` and ``xor``.

Every engine in this reproduction is parameterized by an
:class:`AssociativeOp`.  An operator provides:

* ``identity(dtype)`` — the neutral element (0 for +, dtype-min for max,
  ...).  Exclusive scans and carry initialization depend on it.
* ``apply(a, b)`` — the vectorized binary operation.  For fixed-width
  integers this wraps on overflow exactly like GPU arithmetic.
* ``accumulate(a, axis)`` — a vectorized running scan, used by the fast
  host engine and by the simulator's block-local scan.
* ``invertible`` / ``invert`` — only addition is invertible; the
  higher-order generalization (decoding of difference sequences) is
  therefore only meaningful for ``ADD``, while plain and tuple-based
  scans work with every operator.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.ops.dtypes import as_dtype, is_integer_dtype


class AssociativeOp:
    """A named binary associative operator over numpy arrays.

    Parameters
    ----------
    name:
        Stable identifier used in APIs, benchmarks, and reports.
    fn:
        Vectorized binary function ``(ndarray, ndarray) -> ndarray``.
    identity_fn:
        ``dtype -> scalar`` returning the neutral element.
    ufunc:
        Optional numpy ufunc whose ``.accumulate`` implements a running
        scan.  When absent, :meth:`accumulate` falls back to a Python
        loop (correct, slower) so user-defined operators still work with
        every engine.
    invertible:
        True only when an ``invert_fn`` exists with
        ``fn(invert_fn(a, b), b) == a`` (i.e. subtraction for ``ADD``).
    commutative:
        Recorded for documentation/testing; scans only need
        associativity.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
        identity_fn: Callable[[np.dtype], object],
        ufunc: Optional[np.ufunc] = None,
        invert_fn: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
        commutative: bool = True,
        integer_only: bool = False,
    ):
        self.name = name
        self._fn = fn
        self._identity_fn = identity_fn
        self._ufunc = ufunc
        self._invert_fn = invert_fn
        self.commutative = commutative
        self.integer_only = integer_only

    def __repr__(self) -> str:
        return f"AssociativeOp({self.name!r})"

    @property
    def invertible(self) -> bool:
        """Whether an inverse (e.g. subtraction) is available."""
        return self._invert_fn is not None

    @property
    def ufunc(self) -> Optional[np.ufunc]:
        """The backing numpy ufunc, or ``None`` for looped operators.

        Kernel fast paths (the strided 2-D accumulate, the threaded
        slab scans) are only valid when the operator is a real ufunc
        whose inner loop releases the GIL; looped operators take the
        general per-lane fallback instead.
        """
        return self._ufunc

    def supports_dtype(self, dtype) -> bool:
        """True when the operator is defined for ``dtype``."""
        if self.integer_only:
            return is_integer_dtype(dtype)
        return True

    def check_dtype(self, dtype) -> np.dtype:
        """Resolve and validate ``dtype`` for this operator."""
        resolved = as_dtype(dtype)
        if not self.supports_dtype(resolved):
            raise TypeError(f"operator {self.name!r} does not support dtype {resolved}")
        return resolved

    def identity(self, dtype):
        """The neutral element of the operator for ``dtype``."""
        resolved = self.check_dtype(dtype)
        return resolved.type(self._identity_fn(resolved))

    def apply(self, a, b):
        """Apply the operator elementwise; preserves the dtype of ``a``."""
        a = np.asarray(a)
        with np.errstate(over="ignore"):
            return self._fn(a, np.asarray(b)).astype(a.dtype, copy=False)

    def apply_into(self, a, b, out):
        """Elementwise ``op(a, b)`` written into ``out`` (may alias ``b``).

        The in-place variant of :meth:`apply` for hot paths that cannot
        afford the intermediate allocation (the sharded out-of-core
        driver folds spliced carries into whole shard regions this
        way).  Falls back to apply-then-copy for operators without a
        ufunc.
        """
        if self._ufunc is not None:
            with np.errstate(over="ignore"):
                self._ufunc(a, b, out=out, dtype=out.dtype)
        else:
            out[...] = self.apply(a, b)
        return out

    def invert(self, a, b):
        """Return ``x`` such that ``apply(x, b) == a`` (only if invertible)."""
        if self._invert_fn is None:
            raise TypeError(f"operator {self.name!r} is not invertible")
        a = np.asarray(a)
        with np.errstate(over="ignore"):
            return self._invert_fn(a, np.asarray(b)).astype(a.dtype, copy=False)

    def accumulate(self, a, axis: int = -1, out=None):
        """Inclusive running scan of ``a`` along ``axis``.

        Uses the numpy ufunc accumulate when one exists; otherwise falls
        back to an explicit loop so arbitrary Python operators remain
        usable (at reduced speed).  ``out`` may alias ``a`` for an
        in-place scan (accumulate is a left fold, so aliasing is safe).
        """
        a = np.asarray(a)
        if a.size == 0:
            return a.copy() if out is None else out
        if self._ufunc is not None:
            # Pin the accumulator dtype: numpy otherwise promotes small
            # integers to the platform int, breaking wraparound semantics.
            with np.errstate(over="ignore"):
                return self._ufunc.accumulate(a, axis=axis, dtype=a.dtype, out=out)
        if out is None:
            moved = np.moveaxis(a, axis, 0).copy()
            for i in range(1, moved.shape[0]):
                moved[i] = self.apply(moved[i - 1], moved[i])
            return np.moveaxis(moved, 0, axis)
        # Scan directly into ``out`` (it may alias ``a``): the loop is a
        # left fold, so seeding out with a and overwriting row by row
        # needs no staging copy.
        moved = np.moveaxis(out, axis, 0)
        if out is not a:
            moved[...] = np.moveaxis(a, axis, 0)
        for i in range(1, moved.shape[0]):
            moved[i] = self.apply(moved[i - 1], moved[i])
        return out

    def reduce(self, a, axis: int = -1):
        """Reduce ``a`` along ``axis`` (the block 'local sum' primitive)."""
        a = np.asarray(a)
        if self._ufunc is not None:
            with np.errstate(over="ignore"):
                return self._ufunc.reduce(a, axis=axis, dtype=a.dtype)
        moved = np.moveaxis(a, axis, 0)
        if moved.shape[0] == 0:
            raise ValueError("cannot reduce an empty axis without an identity")
        total = moved[0].copy()
        for i in range(1, moved.shape[0]):
            total = self.apply(total, moved[i])
        return total


def _int_min(dtype: np.dtype):
    if dtype.kind in "iu":
        return np.iinfo(dtype).min
    return -np.inf


def _int_max(dtype: np.dtype):
    if dtype.kind in "iu":
        return np.iinfo(dtype).max
    return np.inf


ADD = AssociativeOp(
    "add",
    fn=np.add,
    identity_fn=lambda dt: 0,
    ufunc=np.add,
    invert_fn=np.subtract,
)

MUL = AssociativeOp(
    "mul",
    fn=np.multiply,
    identity_fn=lambda dt: 1,
    ufunc=np.multiply,
)

MAX = AssociativeOp(
    "max",
    fn=np.maximum,
    identity_fn=_int_min,
    ufunc=np.maximum,
)

MIN = AssociativeOp(
    "min",
    fn=np.minimum,
    identity_fn=_int_max,
    ufunc=np.minimum,
)

XOR = AssociativeOp(
    "xor",
    fn=np.bitwise_xor,
    identity_fn=lambda dt: 0,
    ufunc=np.bitwise_xor,
    invert_fn=np.bitwise_xor,
    integer_only=True,
)

BITAND = AssociativeOp(
    "and",
    fn=np.bitwise_and,
    identity_fn=lambda dt: -1 if dt.kind == "i" else _int_max(dt),
    ufunc=np.bitwise_and,
    integer_only=True,
)

BITOR = AssociativeOp(
    "or",
    fn=np.bitwise_or,
    identity_fn=lambda dt: 0,
    ufunc=np.bitwise_or,
    integer_only=True,
)

#: Operators addressable by name in the public API.
BUILTIN_OPS = {
    op.name: op for op in (ADD, MUL, MAX, MIN, XOR, BITAND, BITOR)
}


def get_op(op) -> AssociativeOp:
    """Resolve ``op`` (name or :class:`AssociativeOp`) to an operator."""
    if isinstance(op, AssociativeOp):
        return op
    if isinstance(op, str):
        if op not in BUILTIN_OPS:
            raise KeyError(
                f"unknown operator {op!r}; built-ins are {sorted(BUILTIN_OPS)}"
            )
        return BUILTIN_OPS[op]
    raise TypeError(f"expected operator name or AssociativeOp, got {type(op).__name__}")
