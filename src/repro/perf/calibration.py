"""Calibration constants for the analytic throughput model.

Each (GPU, word-size) pair carries one :class:`GpuCalibration` with a
memory-bandwidth floor and per-algorithm :class:`AlgorithmCalibration`
entries.  Derivations (all inverse throughputs in picoseconds per item,
asymptotic, i.e. at full occupancy):

**Memory floor.**  A communication-optimal scan moves ``2w`` bytes per
item.  On the Titan X the paper measures 264 GB/s of achieved traffic
(78.6% of the 336 GB/s peak; Section 5.1), i.e. 33 G items/s for 32-bit
words -> ``mem_inv = 30.3 ps``.  The K40 is given the same streaming
efficiency (0.75 * 288 = 216 GB/s -> 27 G items/s, 37.0 ps).

**SAM.**  Single launch.  Runtime = launch latency + memory term
(with an occupancy ramp) + *compute excess* (carry propagation and
iterated computation stages; its own, faster ramp).  The order/tuple
anchor tables are fitted to the ratios in Sections 5.2-5.3, e.g.
Titan X, 32-bit, n = 2^27: SAM/CUB = 1.52 / 1.78 / 1.87 at orders
2 / 5 / 8 -> with CUB at 31 G items/s those pin SAM's order anchors to
42.4 / 90.4 / 138.4 ps, which happen to sit on a near-perfect line
(~10 + 16 q ps) — evidence the fit is internally consistent.

**CUB (decoupled look-back).**  Single pass per order: higher orders
run the full scan ``q`` times (q launches, 2qn traffic).  Tuple anchors
encode the register-pressure and coalescing penalties of the
tuple-data-type formulation (Section 5.3: on the Titan X SAM is 17%
slower at s=2 but 20% / 34% faster at s=5 / s=8).

**Thrust / CUDPP.**  Three kernel launches per pass and 4n traffic
(Sections 2.1, 3.1) -> asymptote about half of SAM's; CUDPP rejects
problems above 2^25 items (Section 5.1).

**Chained carry.**  SAM with the §5.4 read-modify-write chain: up to
64% slower on the Titan X, 39% on the K40 -> base anchors scaled by
1.64 / 1.39.

The fitted constants are validated by ``tests/test_perf_shapes.py``,
which asserts every qualitative claim the paper's text makes about the
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: Picoseconds, as used by all the anchor tables below.
PS = 1e-12


@dataclass(frozen=True)
class AlgorithmCalibration:
    """Timing parameters of one algorithm on one (GPU, word size).

    ``mode`` selects the runtime formula:

    * ``"single_pass"`` (SAM, chained, memcpy): one launch; higher
      orders/tuples add compute excess only.
    * ``"iterated"`` (CUB, Thrust, CUDPP): order-q runs the whole
      pipeline q times (q x launches, q x traffic).
    """

    mode: str
    inv_base_ps: float
    nh: float
    nh_comp: float = 1.0e6
    p: float = 0.5
    t_launch_us: float = 3.0
    launches_per_pass: int = 1
    max_n: Optional[int] = None
    order_inv_ps: Dict[int, float] = field(default_factory=dict)
    tuple_inv_ps: Dict[int, float] = field(default_factory=dict)


@dataclass(frozen=True)
class GpuCalibration:
    """All algorithm calibrations for one (GPU, word size)."""

    gpu_name: str
    word_bits: int
    mem_inv_ps: float
    algorithms: Dict[str, AlgorithmCalibration] = field(default_factory=dict)


def _titan_x_32() -> GpuCalibration:
    return GpuCalibration(
        gpu_name="Titan X",
        word_bits=32,
        mem_inv_ps=30.3,  # 264 GB/s achieved / 8 bytes moved per item
        algorithms={
            "memcpy": AlgorithmCalibration(
                mode="single_pass", inv_base_ps=30.3, nh=2.0e5, t_launch_us=3.0
            ),
            "sam": AlgorithmCalibration(
                mode="single_pass",
                inv_base_ps=30.3,
                nh=8.86e6,       # slow saturation; matches memcpy only at huge n
                nh_comp=0.4e6,
                t_launch_us=25.0,
                order_inv_ps={1: 30.3, 2: 42.4, 5: 90.4, 8: 138.4},
                tuple_inv_ps={1: 30.3, 2: 41.7, 5: 54.1, 8: 69.0},
            ),
            "chained": AlgorithmCalibration(
                mode="single_pass",
                inv_base_ps=49.7,  # 1.64x SAM (Section 5.4: up to 64% slower)
                nh=8.86e6,
                nh_comp=0.4e6,
                t_launch_us=25.0,
                order_inv_ps={1: 49.7},
                tuple_inv_ps={1: 49.7},
            ),
            "cub": AlgorithmCalibration(
                mode="iterated",
                inv_base_ps=32.3,  # 31 G items/s asymptote
                nh=4.39e6,
                t_launch_us=3.0,
                tuple_inv_ps={1: 32.3, 2: 34.7, 5: 63.7, 8: 92.8},
            ),
            "thrust": AlgorithmCalibration(
                mode="iterated",
                inv_base_ps=66.7,  # 15 G items/s: 4n traffic
                nh=6.0e6,
                t_launch_us=6.33,
                launches_per_pass=3,
            ),
            "cudpp": AlgorithmCalibration(
                mode="iterated",
                inv_base_ps=62.5,  # 16 G items/s
                nh=1.18e6,
                t_launch_us=8.0,
                launches_per_pass=3,
                max_n=2**25,
            ),
        },
    )


def _titan_x_64() -> GpuCalibration:
    return GpuCalibration(
        gpu_name="Titan X",
        word_bits=64,
        mem_inv_ps=60.6,  # twice the bytes per item
        algorithms={
            "memcpy": AlgorithmCalibration(
                mode="single_pass", inv_base_ps=60.6, nh=2.0e5, t_launch_us=3.0
            ),
            "sam": AlgorithmCalibration(
                mode="single_pass",
                inv_base_ps=60.6,
                nh=8.86e6,
                nh_comp=0.4e6,
                t_launch_us=25.0,
                order_inv_ps={1: 60.6, 2: 84.8, 5: 180.8, 8: 276.8},
                # Figure 12's oddity: 64-bit tuple throughput is nearly
                # flat across s = 2, 5, 8 on the Titan X.
                tuple_inv_ps={1: 60.6, 2: 91.0, 5: 92.5, 8: 94.0},
            ),
            "chained": AlgorithmCalibration(
                mode="single_pass",
                inv_base_ps=99.4,
                nh=8.86e6,
                nh_comp=0.4e6,
                t_launch_us=25.0,
                order_inv_ps={1: 99.4},
                tuple_inv_ps={1: 99.4},
            ),
            "cub": AlgorithmCalibration(
                mode="iterated",
                inv_base_ps=64.5,
                nh=4.39e6,
                t_launch_us=3.0,
                tuple_inv_ps={1: 64.5, 2: 75.8, 5: 111.0, 8: 126.0},
            ),
            "thrust": AlgorithmCalibration(
                mode="iterated",
                inv_base_ps=133.0,
                nh=6.0e6,
                t_launch_us=6.33,
                launches_per_pass=3,
            ),
            "cudpp": AlgorithmCalibration(
                mode="iterated",
                inv_base_ps=125.0,
                nh=1.18e6,
                t_launch_us=8.0,
                launches_per_pass=3,
                max_n=2**24,
            ),
        },
    )


def _k40_32() -> GpuCalibration:
    return GpuCalibration(
        gpu_name="K40",
        word_bits=32,
        mem_inv_ps=37.0,  # 216 GB/s achieved / 8 bytes per item
        algorithms={
            "memcpy": AlgorithmCalibration(
                mode="single_pass", inv_base_ps=37.0, nh=2.0e5, t_launch_us=3.0
            ),
            # SAM is compute-bound on the K40: its extra carry work is a
            # poor trade on a GPU whose memory is clocked 4.0x faster
            # than its cores (Section 5.1).
            "sam": AlgorithmCalibration(
                mode="single_pass",
                inv_base_ps=84.7,  # 11.8 G items/s
                nh=2.0e6,
                nh_comp=0.4e6,
                t_launch_us=25.0,
                order_inv_ps={1: 84.7, 2: 125.0, 5: 245.0, 8: 365.0},
                tuple_inv_ps={1: 84.7, 2: 100.0, 5: 130.0, 8: 160.0},
            ),
            "chained": AlgorithmCalibration(
                mode="single_pass",
                inv_base_ps=117.7,  # 1.39x SAM (Section 5.4: up to 39% slower)
                nh=2.0e6,
                nh_comp=0.4e6,
                t_launch_us=25.0,
                order_inv_ps={1: 117.7},
                tuple_inv_ps={1: 117.7},
            ),
            "cub": AlgorithmCalibration(
                mode="iterated",
                inv_base_ps=47.6,  # 21 G items/s: ~50% above SAM (Section 5.1)
                nh=1.0e6,
                t_launch_us=3.0,
                tuple_inv_ps={1: 47.6, 2: 55.0, 5: 110.0, 8: 185.0},
            ),
            "thrust": AlgorithmCalibration(
                mode="iterated",
                inv_base_ps=125.0,
                nh=2.0e6,
                t_launch_us=8.0,
                launches_per_pass=3,
            ),
            "cudpp": AlgorithmCalibration(
                mode="iterated",
                inv_base_ps=111.0,
                nh=8.0e5,
                t_launch_us=8.0,
                launches_per_pass=3,
                max_n=2**25,
            ),
        },
    )


def _k40_64() -> GpuCalibration:
    return GpuCalibration(
        gpu_name="K40",
        word_bits=64,
        mem_inv_ps=74.0,
        algorithms={
            "memcpy": AlgorithmCalibration(
                mode="single_pass", inv_base_ps=74.0, nh=2.0e5, t_launch_us=3.0
            ),
            "sam": AlgorithmCalibration(
                mode="single_pass",
                inv_base_ps=154.0,
                nh=2.0e6,
                nh_comp=0.4e6,
                t_launch_us=25.0,
                order_inv_ps={1: 154.0, 2: 230.0, 5: 450.0, 8: 670.0},
                tuple_inv_ps={1: 154.0, 2: 185.0, 5: 235.0, 8: 290.0},
            ),
            "chained": AlgorithmCalibration(
                mode="single_pass",
                inv_base_ps=214.0,
                nh=2.0e6,
                nh_comp=0.4e6,
                t_launch_us=25.0,
                order_inv_ps={1: 214.0},
                tuple_inv_ps={1: 214.0},
            ),
            "cub": AlgorithmCalibration(
                mode="iterated",
                inv_base_ps=95.2,
                nh=1.0e6,
                t_launch_us=3.0,
                tuple_inv_ps={1: 95.2, 2: 110.0, 5: 250.0, 8: 420.0},
            ),
            "thrust": AlgorithmCalibration(
                mode="iterated",
                inv_base_ps=250.0,
                nh=2.0e6,
                t_launch_us=8.0,
                launches_per_pass=3,
            ),
            "cudpp": AlgorithmCalibration(
                mode="iterated",
                inv_base_ps=222.0,
                nh=8.0e5,
                t_launch_us=8.0,
                launches_per_pass=3,
                max_n=2**24,
            ),
        },
    )


#: Lookup: (gpu name, word bits) -> calibration.
DEFAULT_CALIBRATION: Dict[tuple, GpuCalibration] = {
    ("Titan X", 32): _titan_x_32(),
    ("Titan X", 64): _titan_x_64(),
    ("K40", 32): _k40_32(),
    ("K40", 64): _k40_64(),
}
