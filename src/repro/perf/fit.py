"""Fit performance-model constants from first principles.

The hand-written calibration tables in :mod:`repro.perf.calibration`
encode the paper's *reported ratios*.  This module derives the
physically-determined subset of those constants from measurements the
reproduction makes itself:

* the asymptotic inverse throughput of a memory-bound algorithm is
  ``traffic_words_per_element * word_bytes / achieved_bandwidth`` —
  with the traffic coefficient *measured by the simulator* and the
  bandwidth taken from the GPU spec times the streaming efficiency the
  paper reports (78.6% on the Titan X);
* the occupancy half-size ``nh`` follows from one mid-curve anchor.

``fit_memory_floor`` and ``fit_nh`` return those constants;
``verify_calibration`` cross-checks the shipped tables against the
fitted values, which is run as a test — so the tables cannot silently
drift away from the physics that justify them.
"""

from __future__ import annotations

from dataclasses import dataclass


import numpy as np

from repro.gpusim.spec import GPUSpec
from repro.perf.calibration import DEFAULT_CALIBRATION

#: Streaming efficiency: the paper reports 264/336 = 78.6% achieved on
#: the Titan X (Section 5.1).
STREAMING_EFFICIENCY = 0.786


@dataclass(frozen=True)
class FittedFloor:
    """A first-principles memory floor for one (GPU, word size)."""

    gpu_name: str
    word_bits: int
    traffic_words: float
    achieved_gbs: float
    inv_ps: float


def measure_traffic_words(engine_factory, n: int = 16384) -> float:
    """Words per element of an engine, measured on the simulator."""
    values = np.zeros(n, dtype=np.int32)
    result = engine_factory().run(values)
    return result.words_per_element()


def fit_memory_floor(
    spec: GPUSpec,
    word_bits: int,
    traffic_words: float = 2.0,
    efficiency: float = STREAMING_EFFICIENCY,
) -> FittedFloor:
    """Asymptotic inverse throughput from bandwidth + traffic.

    ``inv = traffic_words * word_bytes / (peak_bw * efficiency)``.
    """
    if spec.peak_bandwidth_gbs <= 0:
        raise ValueError(f"{spec.name} has no bandwidth data (not a testbed GPU)")
    achieved = spec.peak_bandwidth_gbs * efficiency
    word_bytes = word_bits // 8
    inv_seconds = traffic_words * word_bytes / (achieved * 1e9)
    return FittedFloor(
        gpu_name=spec.name,
        word_bits=word_bits,
        traffic_words=traffic_words,
        achieved_gbs=achieved,
        inv_ps=inv_seconds * 1e12,
    )


def fit_nh(inv_ps: float, anchor_n: int, anchor_throughput: float, p: float = 0.5) -> float:
    """Solve ``throughput = 1 / (inv * (1 + (nh/n)^p))`` for ``nh``.

    One mid-curve (n, throughput) anchor determines the occupancy
    half-size for the given asymptote.
    """
    inv_seconds = inv_ps * 1e-12
    ratio = 1.0 / (anchor_throughput * inv_seconds)
    if ratio <= 1.0:
        raise ValueError(
            "anchor throughput exceeds the asymptote; cannot fit a ramp"
        )
    return anchor_n * (ratio - 1.0) ** (1.0 / p)


def verify_calibration(tolerance: float = 0.02) -> dict:
    """Check every shipped memory-bound floor against the fitted value.

    Returns {(gpu, bits): relative error}; raises ``AssertionError``
    when any memory-bound algorithm's asymptote disagrees with the
    physics-derived floor by more than ``tolerance`` — except the K40,
    whose SAM entry is compute-bound by design (Section 5.1) and is
    checked to sit *above* the floor instead.
    """
    from repro.gpusim.spec import K40, TITAN_X

    specs = {"Titan X": TITAN_X, "K40": K40}
    errors = {}
    for (gpu_name, bits), cal in DEFAULT_CALIBRATION.items():
        spec = specs[gpu_name]
        efficiency = STREAMING_EFFICIENCY if gpu_name == "Titan X" else 0.75
        floor = fit_memory_floor(spec, bits, efficiency=efficiency)
        shipped = cal.mem_inv_ps
        error = abs(shipped - floor.inv_ps) / floor.inv_ps
        errors[(gpu_name, bits)] = error
        assert error <= tolerance, (
            f"{gpu_name}/{bits}: shipped mem floor {shipped} ps vs fitted "
            f"{floor.inv_ps:.2f} ps"
        )
        # Every algorithm's asymptote must respect the floor.
        for name, alg in cal.algorithms.items():
            assert alg.inv_base_ps >= floor.inv_ps * (1 - tolerance), (
                f"{gpu_name}/{bits}/{name} is faster than the memory floor"
            )
    return errors
