"""The analytic runtime/throughput model.

Runtime formulas (n items, order q, tuple size s):

``single_pass`` algorithms (SAM, chained, memcpy)::

    time = t_launch
         + n * mem_inv          * ramp(n; nh)       # the 2n memory term
         + n * excess(q, s)     * ramp(n; nh_comp)  # carry + iterations

where ``excess(q, s)`` is the asymptotic inverse-throughput surplus over
the memory floor, interpolated from the calibration anchors.  SAM's
memory term never grows with q or s — that is the paper's central
claim — so only the compute excess scales.

``iterated`` algorithms (CUB, Thrust, CUDPP)::

    time = q * launches * t_launch
         + q * n * inv(s) * ramp(n; nh)

i.e. higher orders repeat the entire pipeline (2qn / 4qn traffic).

``ramp(n; nh) = 1 + (nh / n)^p`` models the occupancy ramp-up: at
``n = nh`` the GPU runs at half its asymptotic rate; throughput is low
while the problem cannot even give every resident thread one element
(Section 5.1's explanation of the low small-input throughput).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from repro.gpusim.spec import GPUSpec
from repro.perf.calibration import (
    DEFAULT_CALIBRATION,
    AlgorithmCalibration,
    GpuCalibration,
    PS,
)

#: Algorithms the model understands.
ALGORITHMS = ("sam", "cub", "thrust", "cudpp", "memcpy", "chained")


class UnsupportedProblem(ValueError):
    """The algorithm cannot run this problem (e.g. CUDPP above 2^25)."""


def _interp_anchor(anchors: Dict[int, float], x: int, fallback: float) -> float:
    """Piecewise-linear interpolation over anchor points, with linear
    extrapolation past the last anchor (orders/tuple sizes beyond 8)."""
    if not anchors:
        return fallback
    keys = sorted(anchors)
    values = [anchors[key] for key in keys]
    if x in anchors:
        return anchors[x]
    if len(keys) == 1:
        return values[0]
    if x > keys[-1]:
        slope = (values[-1] - values[-2]) / (keys[-1] - keys[-2])
        return values[-1] + slope * (x - keys[-1])
    if x < keys[0]:
        return values[0]
    return float(np.interp(x, keys, values))


def ramp(n: float, nh: float, p: float = 1.0) -> float:
    """The occupancy ramp term ``1 + (nh / n)^p``.

    At ``n = nh`` the device runs at half its asymptotic rate; below it
    fixed costs dominate.  Exposed as a standalone function because the
    same shape governs the host-side engines — thread-dispatch and
    shard-splice overheads amortize over problem size exactly like
    kernel-launch overhead does — and :mod:`repro.plan.cost` reuses it
    as the small-problem penalty of every parallel strategy.
    """
    if n <= 0:
        return float("inf")
    return 1.0 + (nh / n) ** p


class PerformanceModel:
    """Predict kernel runtime and throughput for the paper's workloads."""

    def __init__(self, calibration: Optional[Dict] = None):
        self.calibration = calibration or DEFAULT_CALIBRATION

    # -- lookup -----------------------------------------------------------

    def _gpu_cal(self, gpu: Union[str, GPUSpec], word_bits: int) -> GpuCalibration:
        name = gpu.name if isinstance(gpu, GPUSpec) else gpu
        key = (name, word_bits)
        if key not in self.calibration:
            raise KeyError(
                f"no calibration for GPU {name!r} at {word_bits}-bit words; "
                f"available: {sorted(self.calibration)}"
            )
        return self.calibration[key]

    def _alg_cal(
        self, gpu: Union[str, GPUSpec], word_bits: int, algorithm: str
    ) -> AlgorithmCalibration:
        gpu_cal = self._gpu_cal(gpu, word_bits)
        if algorithm not in gpu_cal.algorithms:
            raise KeyError(
                f"no calibration for algorithm {algorithm!r}; "
                f"available: {sorted(gpu_cal.algorithms)}"
            )
        return gpu_cal.algorithms[algorithm]

    # -- the model --------------------------------------------------------

    @staticmethod
    def _ramp(n: int, nh: float, p: float) -> float:
        return ramp(n, nh, p)

    def time_seconds(
        self,
        algorithm: str,
        gpu: Union[str, GPUSpec],
        word_bits: int,
        n: int,
        order: int = 1,
        tuple_size: int = 1,
    ) -> float:
        """Predicted kernel runtime in seconds.

        Raises :class:`UnsupportedProblem` when the algorithm cannot run
        the size (the paper plots such series as absent).
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if order < 1 or tuple_size < 1:
            raise ValueError("order and tuple_size must be >= 1")
        gpu_cal = self._gpu_cal(gpu, word_bits)
        cal = self._alg_cal(gpu, word_bits, algorithm)
        if cal.max_n is not None and n > cal.max_n:
            raise UnsupportedProblem(
                f"{algorithm} does not support {n} items at {word_bits}-bit "
                f"words (limit {cal.max_n})"
            )

        launch = cal.t_launch_us * 1e-6
        if cal.mode == "single_pass":
            mem_inv = gpu_cal.mem_inv_ps * PS
            base = cal.inv_base_ps
            order_inv = _interp_anchor(cal.order_inv_ps, order, base)
            tuple_inv = _interp_anchor(cal.tuple_inv_ps, tuple_size, base)
            # Excess over the memory floor; order and tuple costs add
            # (the combined case is the paper's future-work extension).
            excess_ps = max(
                0.0,
                (order_inv - base) + (tuple_inv - base) + (base - gpu_cal.mem_inv_ps),
            )
            time = (
                cal.launches_per_pass * launch
                + n * mem_inv * self._ramp(n, cal.nh, cal.p)
                + n * excess_ps * PS * self._ramp(n, cal.nh_comp, cal.p)
            )
            return time
        if cal.mode == "iterated":
            tuple_inv = _interp_anchor(cal.tuple_inv_ps, tuple_size, cal.inv_base_ps)
            # The tuple-data-type formulation shrinks tiles (register
            # pressure) and breaks coalescing, so underoccupied small
            # problems suffer disproportionately: the fixed per-pass
            # cost and the occupancy ramp both grow with s.  This is
            # what makes the paper's small-input tuple factors (up to
            # 2.6x) much larger than the saturated ones (1.34x).
            launch_eff = launch * (1.0 + 0.8 * (tuple_size - 1))
            nh_eff = cal.nh * (1.0 + 0.25 * (tuple_size - 1))
            per_pass = (
                cal.launches_per_pass * launch_eff
                + n * tuple_inv * PS * self._ramp(n, nh_eff, cal.p)
            )
            return order * per_pass
        raise ValueError(f"unknown calibration mode {cal.mode!r}")

    def throughput(
        self,
        algorithm: str,
        gpu: Union[str, GPUSpec],
        word_bits: int,
        n: int,
        order: int = 1,
        tuple_size: int = 1,
    ) -> float:
        """Predicted throughput in items per second."""
        return n / self.time_seconds(
            algorithm, gpu, word_bits, n, order=order, tuple_size=tuple_size
        )

    def sweep(
        self,
        algorithm: str,
        gpu: Union[str, GPUSpec],
        word_bits: int,
        sizes: Iterable[int],
        order: int = 1,
        tuple_size: int = 1,
    ) -> List[Optional[float]]:
        """Throughput for each size; ``None`` where unsupported
        (mirrors the missing CUDPP points above 2^25 in Figure 3)."""
        out: List[Optional[float]] = []
        for n in sizes:
            try:
                out.append(
                    self.throughput(
                        algorithm, gpu, word_bits, n, order=order, tuple_size=tuple_size
                    )
                )
            except UnsupportedProblem:
                out.append(None)
        return out
