"""Section 2.5's complexity analysis, made executable.

The paper derives the carry-propagation work as

    c  = k * n / e          total carries (k persistent blocks,
                            e elements per chunk)
    e  = t * O(r)           chunk size from threads x registers
    af = m * b / (t * r)    the architectural factor, c / n up to O(r)

These functions compute the predicted quantities for a configuration
and compare them against the simulator's measured counters — closing
the loop between the paper's analysis and the executable system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.spec import GPUSpec


@dataclass(frozen=True)
class CarryComplexity:
    """Predicted carry-propagation quantities for one configuration."""

    num_chunks: int
    total_carries: int
    carries_per_element: float
    architectural_factor: float


def predict_carry_complexity(
    spec: GPUSpec,
    n: int,
    threads_per_block: int = None,
    items_per_thread: int = 1,
    num_blocks: int = None,
) -> CarryComplexity:
    """The Section 2.5 prediction: c = k * n / e.

    Each chunk folds in up to k sums (its own plus k-1 intervening), so
    the decoupled scheme performs ~k carry additions per chunk.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    t = threads_per_block or spec.threads_per_block
    k = num_blocks or spec.persistent_blocks
    e = t * items_per_thread
    num_chunks = -(-n // e)
    k = min(k, num_chunks)
    total = k * num_chunks
    return CarryComplexity(
        num_chunks=num_chunks,
        total_carries=total,
        carries_per_element=total / n,
        architectural_factor=(spec.sm_count * spec.blocks_per_sm)
        / (spec.threads_per_block * spec.registers_per_thread),
    )


def measured_carry_work(result) -> float:
    """Carry additions per chunk, from a simulated run's counters."""
    if result.num_chunks == 0:
        return 0.0
    return result.stats.carry_additions / result.num_chunks


def analysis_table(spec: GPUSpec, n: int, items_per_thread: int = 8) -> dict:
    """The quantities Section 2.5 discusses, for a report row."""
    prediction = predict_carry_complexity(
        spec, n, items_per_thread=items_per_thread
    )
    return {
        "gpu": spec.name,
        "k": spec.persistent_blocks,
        "e": spec.threads_per_block * items_per_thread,
        "chunks": prediction.num_chunks,
        "carries": prediction.total_carries,
        "carries_per_element": round(prediction.carries_per_element, 5),
        "af_x1000": round(prediction.architectural_factor * 1000, 2),
    }
