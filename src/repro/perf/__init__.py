"""Analytic throughput model for regenerating the paper's figures.

The functional simulator measures *what moves* (words, transactions,
polls); it does not model *time*.  This package adds the timing layer:
a first-order analytic model of kernel runtime parameterized by

* the real hardware constants of the two testbed GPUs (Section 4 /
  Table 1): peak bandwidth, SM counts, clock ratios;
* each algorithm's measured traffic coefficients (2n / 3n / 4n words,
  2qn for iterated higher orders — validated against the simulator by
  the integration tests);
* calibration anchors fitted to the ratios the paper reports in its
  text (Section 5): SAM matching memcpy at large n on the Titan X, the
  SAM/CUB crossovers at order ≈ 5 and tuple size ≈ 5, the 2.9×/2.6×
  headline factors, the 64%/39% chained-carry gaps, and the library
  crossover points of Figure 3.

Absolute numbers are modeled (this is a simulator substrate, not the
authors' testbed); the *shape* — who wins, by what factor, where the
crossovers fall — is what the benchmarks reproduce and what
EXPERIMENTS.md records.
"""

from repro.perf.calibration import (
    DEFAULT_CALIBRATION,
    AlgorithmCalibration,
    GpuCalibration,
)
from repro.perf.model import (
    ALGORITHMS,
    PerformanceModel,
    UnsupportedProblem,
    ramp,
)

__all__ = [
    "ALGORITHMS",
    "AlgorithmCalibration",
    "DEFAULT_CALIBRATION",
    "GpuCalibration",
    "PerformanceModel",
    "UnsupportedProblem",
    "ramp",
]
