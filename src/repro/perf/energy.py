"""Energy model — the paper's Section 6 future-work item.

"It might also be interesting to measure the energy consumption to
determine whether the improved performance also results in improved
energy efficiency."

This module answers that question within the reproduction's modeling
framework.  Kernel energy is decomposed the standard way:

    E = P_idle * time  +  e_dram * bytes_moved  +  e_op * compute_ops

* ``P_idle`` — the board's static/leakage power burned for the whole
  kernel duration (performance *is* energy here: finishing sooner saves
  idle energy — the "race to idle" effect).
* ``e_dram`` — energy per byte of DRAM traffic; the dominant dynamic
  term for memory-bound kernels, and the reason communication-optimal
  algorithms are also energy-optimal.
* ``e_op`` — energy per arithmetic operation; covers SAM's redundant
  carry work.

Constants are order-of-magnitude literature values for 28 nm GPUs
(DRAM access ~10-20 pJ/byte at the board level, ~1-5 pJ per 32-bit op,
board idle ~30-60 W); conclusions are reported as ratios, which are
insensitive to the exact values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.gpusim.spec import GPUSpec
from repro.perf.model import PerformanceModel


@dataclass(frozen=True)
class EnergyConstants:
    """Per-GPU energy parameters (board level)."""

    idle_watts: float
    dram_pj_per_byte: float
    pj_per_op: float


#: Rough 28 nm-era constants for the two testbed boards.
ENERGY_CONSTANTS = {
    "Titan X": EnergyConstants(idle_watts=45.0, dram_pj_per_byte=15.0, pj_per_op=2.0),
    "K40": EnergyConstants(idle_watts=40.0, dram_pj_per_byte=18.0, pj_per_op=3.5),
}

#: Words moved per element per pass, by algorithm (the measured
#: coefficients; see EXPERIMENTS.md).
TRAFFIC_WORDS = {
    "sam": 2.0,
    "chained": 2.0,
    "cub": 2.0,
    "thrust": 4.0,
    "cudpp": 4.0,
    "memcpy": 2.0,
}

#: Arithmetic operations per element per pass (scan ladder ~ 2 log2(32)
#: per element at warp level plus correction; a coarse constant).
OPS_PER_ELEMENT = 12.0


class EnergyModel:
    """Joules and J/item estimates layered on the throughput model."""

    def __init__(self, perf_model: PerformanceModel = None):
        self.perf = perf_model or PerformanceModel()

    def _constants(self, gpu: Union[str, GPUSpec]) -> EnergyConstants:
        name = gpu.name if isinstance(gpu, GPUSpec) else gpu
        if name not in ENERGY_CONSTANTS:
            raise KeyError(f"no energy constants for GPU {name!r}")
        return ENERGY_CONSTANTS[name]

    def energy_joules(
        self,
        algorithm: str,
        gpu: Union[str, GPUSpec],
        word_bits: int,
        n: int,
        order: int = 1,
        tuple_size: int = 1,
    ) -> float:
        """Estimated kernel energy in joules."""
        constants = self._constants(gpu)
        time = self.perf.time_seconds(
            algorithm, gpu, word_bits, n, order=order, tuple_size=tuple_size
        )
        word_bytes = word_bits // 8
        passes = order if algorithm in ("cub", "thrust", "cudpp") else 1
        traffic_words = TRAFFIC_WORDS.get(algorithm, 2.0)
        bytes_moved = n * word_bytes * traffic_words * passes
        # SAM iterates its computation stage q times on resident data;
        # iterated algorithms redo everything.
        compute_passes = order
        ops = n * OPS_PER_ELEMENT * compute_passes
        return (
            constants.idle_watts * time
            + constants.dram_pj_per_byte * 1e-12 * bytes_moved
            + constants.pj_per_op * 1e-12 * ops
        )

    def nanojoules_per_item(
        self,
        algorithm: str,
        gpu: Union[str, GPUSpec],
        word_bits: int,
        n: int,
        order: int = 1,
        tuple_size: int = 1,
    ) -> float:
        """Energy efficiency in nJ per processed item (lower is better)."""
        joules = self.energy_joules(
            algorithm, gpu, word_bits, n, order=order, tuple_size=tuple_size
        )
        return joules / n * 1e9
