"""Sharded driver tests: ``scan_file_sharded``, splice, manifest resume.

Mirrors ``test_stream_driver.py`` for the sharded path: bit-identity
against the one-shot host scan across the configuration grid (shard
boundaries landing mid-tuple included), carry priming, per-shard
manifest resume after injected crashes and a real SIGKILL of the CLI,
and the float exact-path fallback.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from conftest import make_int_array
from repro.core.host import host_prefix_sum
from repro.stream import (
    CheckpointError,
    CheckpointMismatchError,
    InjectedFailureError,
    StreamError,
    plan_shards,
    read_shard_manifest,
    scan_file_sharded,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def write_input(tmp_path, values, name="in.bin"):
    path = tmp_path / name
    values.tofile(path)
    return path


class TestPlanShards:
    def test_partition_is_contiguous_and_complete(self):
        for n in (0, 1, 2, 7, 100, 101):
            for s in (1, 2, 3, 8, 200):
                plan = plan_shards(n, s)
                assert plan[0][0] == 0
                assert plan[-1][1] == n
                for (_, hi), (lo, _) in zip(plan, plan[1:]):
                    assert hi == lo
                assert all(hi > lo for lo, hi in plan) or n == 0
                assert len(plan) == (min(s, n) if n else 1)

    def test_near_equal_sizes(self):
        plan = plan_shards(103, 4)
        sizes = [hi - lo for lo, hi in plan]
        assert max(sizes) - min(sizes) <= 1


class TestShardedBitIdentity:
    @pytest.mark.parametrize("shards,workers", [(1, 1), (2, 1), (5, 2), (8, 3)])
    @pytest.mark.parametrize("order,tuple_size,inclusive", [
        (1, 1, True), (1, 3, False), (2, 1, False), (3, 4, True),
    ])
    def test_matches_one_shot(self, tmp_path, rng, shards, workers,
                              order, tuple_size, inclusive):
        values = make_int_array(rng, 10_007)  # prime: edges land mid-tuple
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file_sharded(
            raw, out, dtype="int32", order=order, tuple_size=tuple_size,
            inclusive=inclusive, shards=shards, workers=workers,
            chunk_bytes=2048,
        )
        expected = host_prefix_sum(
            values, order=order, tuple_size=tuple_size, inclusive=inclusive
        )
        assert np.array_equal(np.fromfile(out, dtype=np.int32), expected)
        # Fused order-q jobs (integer add, tuple_size >= 2) are
        # single-pass over the file; pass-per-order jobs run one
        # shard-scan round per order.
        assert result.counters.shards >= result.num_shards * max(
            1, result.passes - 1
        )
        if order > 1 and tuple_size > 1:
            assert result.passes == 1
            assert result.counters.fused_order_scans >= result.num_shards
        else:
            assert result.passes == order
        assert not (tmp_path / "out.bin.scratch").exists()

    @pytest.mark.parametrize("op", ["add", "max", "min", "xor", "and", "or"])
    def test_every_operator(self, tmp_path, rng, op):
        values = make_int_array(rng, 5_000, dtype=np.int64)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        scan_file_sharded(
            raw, out, dtype="int64", op=op, tuple_size=2,
            shards=4, workers=2, chunk_bytes=1024,
        )
        expected = host_prefix_sum(values, op=op, tuple_size=2)
        assert np.array_equal(np.fromfile(out, dtype=np.int64), expected)

    def test_more_shards_than_elements(self, tmp_path, rng):
        values = make_int_array(rng, 5)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file_sharded(raw, out, dtype="int32", shards=64)
        assert result.num_shards == 5  # clamped to one element per shard
        assert np.array_equal(
            np.fromfile(out, dtype=np.int32), host_prefix_sum(values)
        )

    def test_empty_file(self, tmp_path):
        raw = tmp_path / "empty.bin"
        raw.touch()
        out = tmp_path / "out.bin"
        result = scan_file_sharded(raw, out, dtype="int32", shards=4)
        assert result.elements == 0
        assert out.stat().st_size == 0

    def test_inner_engine_delegation(self, tmp_path, rng):
        values = make_int_array(rng, 20_000, dtype=np.int64)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file_sharded(
            raw, out, dtype="int64", order=2, engine="sam",
            shards=3, workers=2, chunk_bytes=1 << 14,
        )
        assert result.counters.delegated_stage_scans > 0
        expected = host_prefix_sum(values, order=2)
        assert np.array_equal(np.fromfile(out, dtype=np.int64), expected)

    def test_misaligned_file_rejected(self, tmp_path):
        raw = tmp_path / "bad.bin"
        raw.write_bytes(b"\x00" * 10)
        with pytest.raises(ValueError, match="multiple"):
            scan_file_sharded(raw, tmp_path / "o.bin", dtype="int32", shards=2)

    def test_bad_knobs_rejected(self, tmp_path, rng):
        raw = write_input(tmp_path, make_int_array(rng, 10))
        with pytest.raises(ValueError, match="shards"):
            scan_file_sharded(raw, tmp_path / "o.bin", shards=0)
        with pytest.raises(ValueError, match="workers"):
            scan_file_sharded(raw, tmp_path / "o.bin", shards=2, workers=0)


class TestCarryPriming:
    def test_sequential_run_primes_every_shard(self, tmp_path, rng):
        # One worker executes shards in order, so every shard sees its
        # predecessors finished, bakes its carry, and skips the fold —
        # the job degenerates to a single pass over the data, like
        # decoupled lookback with in-order blocks.
        values = make_int_array(rng, 8_000, dtype=np.int64)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file_sharded(
            raw, out, dtype="int64", shards=4, workers=1, chunk_bytes=4096,
        )
        assert result.counters.primed_shards == 4
        assert result.counters.folded_shards == 0
        assert np.array_equal(
            np.fromfile(out, dtype=np.int64), host_prefix_sum(values)
        )

    def test_exclusive_output_still_shifts_primed_shards(self, tmp_path, rng):
        values = make_int_array(rng, 4_001)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file_sharded(
            raw, out, dtype="int32", tuple_size=3, inclusive=False,
            shards=4, workers=1, chunk_bytes=1024,
        )
        # Primed shards skip the carry fold but still need the
        # exclusive lane shift.
        assert result.counters.primed_shards == 4
        expected = host_prefix_sum(values, tuple_size=3, inclusive=False)
        assert np.array_equal(np.fromfile(out, dtype=np.int32), expected)


class TestFloatPath:
    def test_float_exact_falls_back_to_sequential(self, tmp_path, rng):
        values = (rng.random(4_000) * 100 - 50).astype(np.float64)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file_sharded(
            raw, out, dtype="float64", shards=4, chunk_bytes=4096,
        )
        assert result.fallback_reason is not None
        assert result.num_shards == 1
        # The fallback is the sequential exact path: bit-identical.
        expected = host_prefix_sum(values)
        assert np.fromfile(out, np.float64).tobytes() == expected.tobytes()

    def test_float_exact_false_shards_with_tolerance(self, tmp_path, rng):
        values = (rng.random(4_000) * 100 - 50).astype(np.float64)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file_sharded(
            raw, out, dtype="float64", shards=4, workers=2,
            chunk_bytes=2048, exact=False,
        )
        assert result.fallback_reason is None
        assert result.num_shards == 4
        expected = host_prefix_sum(values)
        assert np.allclose(np.fromfile(out, np.float64), expected)


class TestManifestResume:
    def run_interrupted(self, tmp_path, rng, n=30_000, fail_after=3, **kw):
        values = make_int_array(rng, n)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        manifest = tmp_path / "job.manifest"
        config = dict(
            dtype="int32", order=2, tuple_size=3, chunk_bytes=4096,
            shards=6, workers=2, checkpoint=manifest,
        )
        config.update(kw)
        with pytest.raises(InjectedFailureError):
            scan_file_sharded(raw, out, fail_after_shards=fail_after, **config)
        return values, raw, out, manifest, config

    def test_resume_redoes_only_unfinished_shards(self, tmp_path, rng):
        values, raw, out, manifest, config = self.run_interrupted(tmp_path, rng)
        assert manifest.exists()
        done_before = sum(read_shard_manifest(manifest)["state"]["done"])
        assert done_before >= 3  # the injected crash recorded progress

        result = scan_file_sharded(raw, out, resume=True, **config)
        assert result.counters.resumes == 1
        assert result.resumed_shards >= done_before
        expected = host_prefix_sum(values, order=2, tuple_size=3)
        assert np.array_equal(np.fromfile(out, dtype=np.int32), expected)
        assert not manifest.exists()  # complete jobs clean up
        assert not (tmp_path / "out.bin.scratch").exists()

    def test_resume_mid_fold_phase(self, tmp_path, rng):
        # Crash *inside* the fold phase: an in-place fold is not
        # idempotent, so resume must rebuild unfinished shards from the
        # intact pass source before refolding.  An exclusive scan runs
        # the fold/shift phase for every shard regardless of priming,
        # so with 6 scan completions first, completion 7 is a fold.
        values, raw, out, manifest, config = self.run_interrupted(
            tmp_path, rng, fail_after=7, order=1, tuple_size=2,
            inclusive=False,
        )
        state = read_shard_manifest(manifest)["state"]
        assert state["phase"] == {"kind": "fold"}
        result = scan_file_sharded(raw, out, resume=True, **config)
        assert result.counters.resumes == 1
        expected = host_prefix_sum(values, tuple_size=2, inclusive=False)
        assert np.array_equal(np.fromfile(out, dtype=np.int32), expected)

    def test_resume_with_mismatched_config_rejected(self, tmp_path, rng):
        values, raw, out, manifest, config = self.run_interrupted(tmp_path, rng)
        bad = dict(config, order=1)
        with pytest.raises(CheckpointMismatchError, match="order"):
            scan_file_sharded(raw, out, resume=True, **bad)

    def test_resume_with_different_input_rejected(self, tmp_path, rng):
        values, raw, out, manifest, config = self.run_interrupted(tmp_path, rng)
        other = write_input(tmp_path, make_int_array(rng, 50_000), "other.bin")
        with pytest.raises(CheckpointMismatchError, match="elements"):
            scan_file_sharded(other, out, resume=True, **config)

    def test_resume_with_missing_output_rejected(self, tmp_path, rng):
        values, raw, out, manifest, config = self.run_interrupted(tmp_path, rng)
        out.unlink()
        with pytest.raises(StreamError, match="cannot resume"):
            scan_file_sharded(raw, out, resume=True, **config)

    def test_resume_keeps_stored_shard_plan(self, tmp_path, rng):
        # Shard boundaries are part of the on-disk layout; a resume
        # with a different --shards must continue the stored plan.
        values, raw, out, manifest, config = self.run_interrupted(tmp_path, rng)
        config["shards"] = 3
        result = scan_file_sharded(raw, out, resume=True, **config)
        assert result.num_shards == 6
        expected = host_prefix_sum(values, order=2, tuple_size=3)
        assert np.array_equal(np.fromfile(out, dtype=np.int32), expected)

    def test_fresh_start_deletes_stale_manifest(self, tmp_path, rng):
        values, raw, out, manifest, config = self.run_interrupted(tmp_path, rng)
        assert manifest.exists()
        scan_file_sharded(raw, out, **config)  # fresh start, no resume
        assert not manifest.exists()
        expected = host_prefix_sum(values, order=2, tuple_size=3)
        assert np.array_equal(np.fromfile(out, dtype=np.int32), expected)

    def test_corrupt_manifest_rejected(self, tmp_path, rng):
        values, raw, out, manifest, config = self.run_interrupted(tmp_path, rng)
        manifest.write_text("{not json")
        with pytest.raises(CheckpointError, match="cannot read"):
            scan_file_sharded(raw, out, resume=True, **config)

    def test_resume_without_manifest_starts_fresh(self, tmp_path, rng):
        values = make_int_array(rng, 5_000)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file_sharded(
            raw, out, dtype="int32", shards=4, chunk_bytes=4096,
            checkpoint=tmp_path / "never-written.manifest", resume=True,
        )
        assert result.counters.resumes == 0
        assert np.array_equal(
            np.fromfile(out, dtype=np.int32), host_prefix_sum(values)
        )


class TestAdaptiveChunks:
    def test_chunks_grow_from_a_small_start(self, tmp_path, rng):
        values = make_int_array(rng, 200_000, dtype=np.int64)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file_sharded(
            raw, out, dtype="int64", shards=2, workers=1,
            chunk_bytes=64 << 10,  # start at the floor; fast chunks double
        )
        assert result.counters.chunk_resizes > 0
        assert np.array_equal(
            np.fromfile(out, dtype=np.int64), host_prefix_sum(values)
        )

    def test_disabled_means_fixed_chunks(self, tmp_path, rng):
        values = make_int_array(rng, 50_000)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file_sharded(
            raw, out, dtype="int32", shards=2, chunk_bytes=4096,
            adaptive_chunks=False,
        )
        assert result.counters.chunk_resizes == 0
        assert np.array_equal(
            np.fromfile(out, dtype=np.int32), host_prefix_sum(values)
        )


class TestShardedResumeAfterKill:
    """A *real* kill: SIGKILL the sharded CLI mid-run, then resume."""

    def test_sigkill_then_resume(self, tmp_path, rng):
        values = make_int_array(rng, 1 << 20, dtype=np.int64)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        manifest = tmp_path / "job.manifest"
        args = [
            str(raw), str(out), "--dtype", "int64", "--order", "2",
            "--shards", "8", "--workers", "2", "--chunk-bytes", "16384",
            "--checkpoint", str(manifest),
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src")
            + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "stream", *args],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while (
                not manifest.exists()
                and proc.poll() is None
                and time.monotonic() < deadline
            ):
                time.sleep(0.002)
            killed = proc.poll() is None
            if killed:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait()

        # If the job finished before the kill landed, the manifest is
        # gone and --resume starts fresh; bit-identity holds either way.
        from repro.__main__ import main

        assert main(["stream", *args, "--resume"]) == 0
        expected = host_prefix_sum(values, order=2)
        assert np.array_equal(np.fromfile(out, dtype=np.int64), expected)
        if killed:
            assert not manifest.exists()
        assert not (tmp_path / "out.bin.scratch").exists()


class TestShardThreads:
    """Slab threads under the shard pool (combined oversubscription guard)."""

    def test_threads_bit_identical_and_counted(self, tmp_path, rng):
        values = make_int_array(rng, 50_021, dtype=np.int64)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file_sharded(
            raw, out, dtype="int64", order=2, tuple_size=3,
            shards=4, workers=2, chunk_bytes=1 << 14, threads=8,
        )
        expected = host_prefix_sum(values, order=2, tuple_size=3)
        assert np.array_equal(np.fromfile(out, dtype=np.int64), expected)
        # 8-thread budget over 2 workers -> 4 slab threads per shard task.
        assert result.counters.threaded_scans > 0

    def test_thread_budget_smaller_than_workers_stays_serial(self, tmp_path, rng):
        values = make_int_array(rng, 10_007)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file_sharded(
            raw, out, dtype="int32", shards=4, workers=4,
            chunk_bytes=1 << 14, threads=2,
        )
        expected = host_prefix_sum(values)
        assert np.array_equal(np.fromfile(out, dtype=np.int32), expected)
        # budget // workers == 0 -> clamped to 1 thread -> serial kernel.
        assert result.counters.threaded_scans == 0
