"""Unit tests for the cooperative scheduler and kernel launching."""

import numpy as np
import pytest

from repro.gpusim.counters import TrafficStats
from repro.gpusim.errors import DeadlockError, KernelFault
from repro.gpusim.kernel import launch_kernel
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.scheduler import (
    SCHEDULE_POLICIES,
    CooperativeScheduler,
    make_seeded_random,
    resolve_policy,
    rotating,
    round_robin,
    reversed_order,
)
from repro.gpusim.spec import TITAN_X


class TestPolicies:
    @pytest.mark.parametrize("name", sorted(SCHEDULE_POLICIES))
    def test_policies_are_permutations(self, name):
        policy = SCHEDULE_POLICIES[name]
        ids = [0, 1, 2, 5, 9]
        for round_index in range(10):
            order = policy(round_index, ids)
            assert sorted(order) == ids

    def test_round_robin_is_ascending(self):
        assert round_robin(3, [2, 0, 1]) == [2, 0, 1]

    def test_reversed(self):
        assert reversed_order(0, [0, 1, 2]) == [2, 1, 0]

    def test_rotating_changes_start(self):
        assert rotating(0, [0, 1, 2]) == [0, 1, 2]
        assert rotating(1, [0, 1, 2]) == [1, 2, 0]

    def test_seeded_random_is_deterministic(self):
        a = make_seeded_random(7)
        b = make_seeded_random(7)
        for r in range(5):
            assert a(r, list(range(8))) == b(r, list(range(8)))

    def test_resolve_by_name_and_callable(self):
        assert resolve_policy("round_robin") is round_robin
        assert resolve_policy(rotating) is rotating

    def test_resolve_unknown(self):
        with pytest.raises(KeyError, match="unknown schedule policy"):
            resolve_policy("chaotic")

    def test_resolve_wrong_type(self):
        with pytest.raises(TypeError, match="policy"):
            resolve_policy(42)


class TestScheduler:
    def test_runs_all_blocks(self):
        stats = TrafficStats()
        done = []

        def block(i):
            done.append(i)
            return
            yield

        CooperativeScheduler(stats).run({i: block(i) for i in range(5)})
        assert sorted(done) == list(range(5))

    def test_interleaves_at_yields(self):
        stats = TrafficStats()
        trace = []

        def block(i):
            trace.append((i, 0))
            yield
            trace.append((i, 1))

        CooperativeScheduler(stats).run({0: block(0), 1: block(1)})
        # Both blocks run step 0 before either runs step 1.
        assert trace == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_policy_must_permute(self):
        stats = TrafficStats()

        def bad_policy(round_index, ids):
            return list(ids)[:-1]

        def block():
            yield

        with pytest.raises(ValueError, match="permutation"):
            CooperativeScheduler(stats, policy=bad_policy).run({0: block(), 1: block()})

    def test_kernel_exception_wrapped(self):
        stats = TrafficStats()

        def block():
            raise RuntimeError("boom")
            yield

        with pytest.raises(KernelFault) as excinfo:
            CooperativeScheduler(stats).run({3: block()})
        assert excinfo.value.block_id == 3
        assert isinstance(excinfo.value.original, RuntimeError)

    def test_deadlock_detected(self):
        stats = TrafficStats()

        def spinner():
            while True:
                yield

        with pytest.raises(DeadlockError, match="no progress"):
            CooperativeScheduler(stats, max_idle_rounds=3).run(
                {0: spinner(), 1: spinner()}
            )

    def test_writes_reset_idle_counter(self):
        stats = TrafficStats()
        gmem = GlobalMemory(stats)
        flag = gmem.alloc("flag", 1, np.int64)

        def producer():
            # A producer may yield several times before writing (e.g.
            # local compute split across steps); this must stay within
            # the idle budget without being mistaken for a deadlock.
            for _ in range(4):
                yield
            gmem.store_scalar(flag, 0, 1)

        def consumer():
            while gmem.load_scalar(flag, 0) == 0:
                yield

        CooperativeScheduler(stats, max_idle_rounds=6).run(
            {0: consumer(), 1: producer()}
        )  # must not raise: producer writes within the idle budget


class TestLaunchKernel:
    def test_counts_launches(self):
        gmem = GlobalMemory()

        def kernel(ctx):
            return

        launch_kernel(kernel, TITAN_X, gmem=gmem, num_blocks=2)
        launch_kernel(kernel, TITAN_X, gmem=gmem, num_blocks=2)
        assert gmem.stats.kernel_launches == 2

    def test_default_grid_is_persistent_blocks(self):
        result = launch_kernel(lambda ctx: None, TITAN_X)
        assert result.num_blocks == TITAN_X.persistent_blocks

    def test_plain_function_kernels_follow_policy(self):
        order = []

        def kernel(ctx):
            order.append(ctx.block_id)

        launch_kernel(kernel, TITAN_X, num_blocks=3, policy="reversed")
        assert order == [2, 1, 0]

    def test_invalid_num_blocks(self):
        with pytest.raises(ValueError, match="num_blocks"):
            launch_kernel(lambda ctx: None, TITAN_X, num_blocks=0)

    def test_block_contexts_have_ids(self):
        seen = {}

        def kernel(ctx):
            seen[ctx.block_id] = ctx.num_blocks

        launch_kernel(kernel, TITAN_X, num_blocks=4)
        assert seen == {0: 4, 1: 4, 2: 4, 3: 4}
