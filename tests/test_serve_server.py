"""ScanServer end to end: concurrency, batching, backpressure, restarts.

The in-process fixture runs the asyncio server on a background thread
with a unix socket in ``tmp_path``; clients are the real blocking
:class:`~repro.serve.ScanClient`.  The kill test runs the server as a
``python -m repro serve`` subprocess, SIGKILLs it mid-stream, restarts
with ``--restore``, and verifies byte-identity across every op/dtype/
order/tuple-size in the grid — the PR's restart contract.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from conftest import make_int_array
from repro.serve import (
    ScanClient,
    ScanServer,
    SessionExistsError,
    UnknownSessionError,
)
from repro.stream.errors import SessionStateError
from repro.stream.session import ScanSession

GRID = [
    ("add", 1, 1, True, "int64"),
    ("add", 2, 4, True, "int64"),
    ("max", 1, 5, True, "int64"),
    ("xor", 2, 2, False, "uint64"),
    ("mul", 1, 4, True, "int32"),
    ("min", 2, 1, False, "int64"),
]


def _chunks_for(rng, dtype, s, count=5, max_rows=20):
    lo, hi = (0, 100) if dtype.startswith("u") else (-50, 50)
    return [
        make_int_array(
            rng, int(rng.integers(0, max_rows)) * s, dtype=np.dtype(dtype),
            lo=lo, hi=hi,
        )
        for _ in range(count)
    ]


class ServerThread:
    """Run a ScanServer on its own event loop in a daemon thread."""

    def __init__(self, **kwargs):
        self.kwargs = kwargs
        self.server = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.server = ScanServer(**self.kwargs)
            await self.server.start()
            self._loop = asyncio.get_running_loop()
            self._started.set()
            await self.server.serve_forever()
            await self.server.stop()

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._started.wait(10), "server never started"
        return self

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=10)


@pytest.fixture
def serve(tmp_path):
    sock = str(tmp_path / "serve.sock")
    with ServerThread(unix_path=sock) as st:
        yield st, f"unix:{sock}"


def test_concurrent_clients_bit_identical(serve, rng):
    _, address = serve
    streams = {}
    for idx, (op, order, s, inclusive, dtype) in enumerate(GRID):
        streams[f"s{idx}"] = (op, order, s, inclusive, dtype,
                              _chunks_for(rng, dtype, s))
    results, errors = {}, []

    def worker(name):
        try:
            op, order, s, inclusive, dtype, chunks = streams[name]
            with ScanClient(address) as client:
                client.open(name, op=op, order=order, tuple_size=s,
                            inclusive=inclusive, dtype=dtype)
                outs = client.feed_many(name, chunks, window=4)
                results[name] = outs
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append((name, repr(exc)))

    threads = [threading.Thread(target=worker, args=(n,)) for n in streams]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors, errors

    for name, (op, order, s, inclusive, dtype, chunks) in streams.items():
        oracle = ScanSession(op=op, order=order, tuple_size=s,
                             inclusive=inclusive, dtype=dtype)
        for got, chunk in zip(results[name], chunks):
            np.testing.assert_array_equal(
                got.astype(np.dtype(dtype)), oracle.feed(chunk.copy())
            )


def test_batched_dispatch_engages_and_stays_exact(tmp_path, rng):
    sock = str(tmp_path / "b.sock")
    with ServerThread(unix_path=sock) as st:
        address = f"unix:{sock}"
        n_clients = 6
        chunk_sets = {
            f"c{i}": [make_int_array(rng, 64, dtype=np.int64) for _ in range(12)]
            for i in range(n_clients)
        }
        results, errors = {}, []
        barrier = threading.Barrier(n_clients)

        def worker(name):
            try:
                with ScanClient(address) as client:
                    client.open(name, op="add", dtype="int64")
                    barrier.wait(timeout=10)
                    results[name] = client.feed_many(
                        name, chunk_sets[name], window=6
                    )
            except Exception as exc:  # pragma: no cover
                errors.append((name, repr(exc)))

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in chunk_sets]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
        for name, chunks in chunk_sets.items():
            oracle = ScanSession(op="add", dtype="int64")
            for got, chunk in zip(results[name], chunks):
                np.testing.assert_array_equal(got, oracle.feed(chunk.copy()))
        with ScanClient(address) as client:
            gauges = client.stats()["gauges"]
        assert gauges["batch_dispatches"] > 0
        assert gauges["batch_occupancy"] > 1.0


def test_open_errors_and_unknown_session(serve, rng):
    _, address = serve
    with ScanClient(address) as client:
        reply = client.open("x", op="add", dtype="int64")
        assert reply["created"] and reply["offset"] == 0
        reply = client.open("x", op="add", dtype="int64")
        assert not reply["created"]
        with pytest.raises(SessionExistsError):
            client.open("x", op="max", dtype="int64")
        with pytest.raises(UnknownSessionError):
            client.feed("ghost", make_int_array(rng, 4, dtype=np.int64))


def test_wrong_dtype_feed_is_typed_error(serve, rng):
    _, address = serve
    with ScanClient(address) as client:
        client.open("d", op="add", dtype="int64")
        with pytest.raises(SessionStateError):
            client.feed("d", make_int_array(rng, 4, dtype=np.int32))
        # session still usable afterwards
        out = client.feed("d", np.arange(4, dtype=np.int64))
        np.testing.assert_array_equal(out, [0, 1, 3, 6])


def test_snapshot_restore_round_trip(serve, rng):
    _, address = serve
    with ScanClient(address) as client:
        client.open("snap", op="add", order=2, dtype="int64")
        client.feed("snap", make_int_array(rng, 100, dtype=np.int64))
        snap = client.snapshot("snap")
        extra = make_int_array(rng, 33, dtype=np.int64)
        first = client.feed("snap", extra.copy())
        offset = client.restore("snap", snap["state"], snap["counters"])
        assert offset == 100
        second = client.feed("snap", extra.copy())
        np.testing.assert_array_equal(first, second)


def test_stats_shape(serve, rng):
    _, address = serve
    with ScanClient(address) as client:
        client.open("st", op="add", dtype="int64")
        client.feed("st", make_int_array(rng, 8, dtype=np.int64))
        stats = client.stats()
    assert stats["sessions"]["st"]["offset"] == 8
    assert stats["sessions"]["st"]["counters"]["chunks"] == 1
    assert stats["aggregate"]["elements"] == 8
    gauges = stats["gauges"]
    for key in (
        "feeds_dispatched", "batch_dispatches", "solo_dispatches",
        "batch_occupancy", "queue_depth", "max_queue_depth",
        "busy_rejections", "checkpoint_writes",
    ):
        assert key in gauges
    assert gauges["feeds_dispatched"] == 1


def test_busy_backpressure_preserves_order(tmp_path, rng):
    sock = str(tmp_path / "busy.sock")
    with ServerThread(unix_path=sock, max_inflight_bytes=1 << 14) as st:
        address = f"unix:{sock}"
        chunks = [make_int_array(rng, 2000, dtype=np.int64) for _ in range(8)]
        with ScanClient(address) as client:
            client.open("busy", op="add", dtype="int64")
            outs = client.feed_many("busy", chunks, window=8)
        oracle = ScanSession(op="add", dtype="int64")
        for got, chunk in zip(outs, chunks):
            np.testing.assert_array_equal(got, oracle.feed(chunk.copy()))
        assert st.server.busy_rejections > 0


def test_registry_checkpoint_written_on_feed_cadence(tmp_path, rng):
    sock = str(tmp_path / "ck.sock")
    ckpt = tmp_path / "registry.json"
    with ServerThread(
        unix_path=sock, checkpoint=str(ckpt), checkpoint_every=1
    ):
        with ScanClient(f"unix:{sock}") as client:
            client.open("ck", op="add", dtype="int64")
            client.feed("ck", make_int_array(rng, 16, dtype=np.int64))
            deadline = time.time() + 5
            while not ckpt.exists() and time.time() < deadline:
                time.sleep(0.01)
    assert ckpt.exists()
    from repro.serve import SessionRegistry

    registry = SessionRegistry()
    assert registry.load(ckpt) == 1
    assert registry.get("ck").offset == 16


def test_sigkill_restore_bit_identical_across_grid(tmp_path, rng):
    """Kill -9 the serving daemon mid-stream, restart with --restore,
    re-feed from the server's restored offsets: every session's final
    state must be byte-identical to an uninterrupted in-process run."""
    sock = str(tmp_path / "kill.sock")
    ckpt = str(tmp_path / "registry.json")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)

    def start_server(restore=False):
        cmd = [sys.executable, "-m", "repro", "serve", "--unix", sock,
               "--checkpoint", ckpt, "--checkpoint-every", "1"]
        if restore:
            cmd.append("--restore")
        proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                                stderr=subprocess.STDOUT, text=True)
        deadline = time.time() + 15
        while time.time() < deadline:
            if os.path.exists(sock):
                return proc
            if proc.poll() is not None:
                raise AssertionError(f"server died: {proc.communicate()[0]}")
            time.sleep(0.05)
        raise AssertionError("server never bound its socket")

    streams = {}
    for idx, (op, order, s, inclusive, dtype) in enumerate(GRID):
        streams[f"g{idx}"] = (op, order, s, inclusive, dtype,
                              _chunks_for(rng, dtype, s, count=8, max_rows=12))

    proc = start_server()
    try:
        # Feed a prefix of every stream, checkpointing every feed.
        with ScanClient(f"unix:{sock}") as client:
            for name, (op, order, s, inclusive, dtype, chunks) in streams.items():
                client.open(name, op=op, order=order, tuple_size=s,
                            inclusive=inclusive, dtype=dtype)
                for chunk in chunks[:4]:
                    client.feed(name, chunk)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
        os.unlink(sock)

        proc = start_server(restore=True)
        tails, consumed_at = {}, {}
        with ScanClient(f"unix:{sock}") as client:
            for name, (op, order, s, inclusive, dtype, chunks) in streams.items():
                reply = client.open(name, op=op, order=order, tuple_size=s,
                                    inclusive=inclusive, dtype=dtype)
                consumed = reply["offset"]
                # The durable offset may trail the last replied feed
                # (the checkpoint lands after replies, at-least-once),
                # but never run ahead of it, and always sits on a
                # chunk boundary of what was fed.
                prefix = sum(c.size for c in chunks[:4])
                assert 0 <= consumed <= prefix, name
                flat = np.concatenate(chunks)
                consumed_at[name] = consumed
                tails[name] = client.feed(name, flat[consumed:])
    finally:
        proc.kill()
        proc.wait(timeout=10)

    for name, (op, order, s, inclusive, dtype, chunks) in streams.items():
        oracle = ScanSession(op=op, order=order, tuple_size=s,
                             inclusive=inclusive, dtype=dtype)
        flat = np.concatenate(chunks)
        consumed = consumed_at[name]
        if consumed:
            oracle.feed(flat[:consumed].copy())
        np.testing.assert_array_equal(
            tails[name].astype(np.dtype(dtype)),
            oracle.feed(flat[consumed:].copy()),
            err_msg=name,
        )
