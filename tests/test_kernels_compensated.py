"""The compensated float kernel layer and its parallel decompositions.

The compensated contract (:mod:`repro.kernels.compensated`) has two
halves, and both are tested here:

* **Determinism** — under ``float_mode="compensated"`` the output is a
  pure function of the input: bit-identical for any slab thread count,
  any shard count, any chunk split, and any session feed boundary,
  because per-segment error-free totals are always folded through the
  same fixed 4096-row segment grid in the same canonical order.
* **Accuracy** — the rendered result is *faithful* (within one ulp of
  the true sum), so on cancellation-heavy inputs — where the naive
  left fold loses whole digits — the compensated scan must beat the
  naive serial error against a float128 oracle.  That inequality is
  the paper-level claim that makes the mode worth its 3x arithmetic.

Special values are part of the contract too: NaN/±inf poisoning must
be deterministic (same bits on every decomposition), ``-0.0`` is the
canonical additive identity and must survive where IEEE says it does,
and denormals must not flush through the two-sum.
"""

import os

import numpy as np
import pytest

from repro import kernels
from repro.kernels import (
    CompensatedCollectKernel,
    CompensatedFoldKernel,
    chain_segments,
    compensated_scan_into,
    compensated_supported,
    fresh_state,
    lane_scan_compensated,
    resolve_float_mode,
    segment_span,
)
from repro.kernels.compensated import HI, LO, check_compensated
from repro.ops import get_op

OP = get_op("add")
THREADS = [1, 2, 3, 8]
SHARDS = [1, 2, 4]


def _bits(array):
    a = np.asarray(array)
    return a.view(np.uint32 if a.dtype.itemsize == 4 else np.uint64)


def _assert_bitwise(got, want, msg=""):
    got, want = np.asarray(got), np.asarray(want)
    assert got.dtype == want.dtype, msg
    assert np.array_equal(_bits(got), _bits(want)), msg


def _oneshot(x, s=1, threads=None):
    state = fresh_state(x.dtype, s)
    return lane_scan_compensated(x, OP, s, state, 0, threads=threads)


def _split_scan(x, s, cuts):
    state = fresh_state(x.dtype, s)
    outs, pos = [], 0
    for part in np.split(x, cuts):
        outs.append(lane_scan_compensated(part, OP, s, state, pos))
        pos += part.size
    return np.concatenate(outs) if outs else x.copy()


def _cancellation_corpus(rng, n, dtype=np.float64):
    """Large alternating terms whose partial sums repeatedly cancel:
    the naive fold's absorbed low-order digits never come back.  The
    sign flip is per *group* so the +big/-big pair still annihilates —
    per-element signs would random-walk the true prefix up to ~1e18,
    where even a correctly-rounded result carries a huge absolute
    error and the comparison says nothing."""
    big = 1e7 if np.dtype(dtype) == np.float32 else 1e16
    groups = n // 4 + 1
    base = np.tile(np.array([big, 1.0, -big, 1.0]), groups)
    base *= np.repeat(rng.choice([1.0, -1.0], groups), 4)
    return base[:n].astype(dtype)


def _oracle(x):
    """Extended-precision inclusive cumsum (float128/float80)."""
    return np.cumsum(x.astype(np.longdouble))


# -- accuracy: the reason the mode exists ------------------------------------


def test_compensated_beats_naive_on_cancellation(rng):
    """Acceptance criterion: max |error| vs the float128 oracle must
    not exceed the serial naive fold's on a cancellation corpus —
    and on this corpus it must beat it outright."""
    x = _cancellation_corpus(rng, 200_000)
    oracle = _oracle(x)
    naive_err = np.max(np.abs(np.cumsum(x).astype(np.longdouble) - oracle))
    comp_err = np.max(np.abs(_oneshot(x).astype(np.longdouble) - oracle))
    assert comp_err <= naive_err
    # Not a tie: the compensated result sits at the faithful-rounding
    # floor (prefixes near 1e16 round with error ~1; ulp there is 2)
    # while the naive fold's absorbed units accumulate linearly.
    assert comp_err < naive_err / 100
    # Faithful: within ~1 ulp of each true prefix.
    spacing = np.spacing(np.abs(oracle.astype(np.float64)) + 1e-300)
    ulps = np.abs(_oneshot(x).astype(np.longdouble) - oracle).astype(float) / spacing
    assert np.max(ulps) <= 2.0


def test_compensated_never_worse_on_benign_input(rng):
    x = rng.standard_normal(60_001) * 10.0 ** rng.integers(-8, 8, 60_001)
    oracle = _oracle(x)
    naive_err = np.max(np.abs(np.cumsum(x).astype(np.longdouble) - oracle))
    comp_err = np.max(np.abs(_oneshot(x).astype(np.longdouble) - oracle))
    assert comp_err <= naive_err


def test_float32_accuracy_against_float64_oracle(rng):
    x = _cancellation_corpus(rng, 40_000, np.float32)
    oracle = np.cumsum(x.astype(np.float64))
    naive_err = np.max(np.abs(np.cumsum(x).astype(np.float64) - oracle))
    comp_err = np.max(np.abs(_oneshot(x).astype(np.float64) - oracle))
    assert comp_err <= naive_err


# -- determinism: splits, threads, shards ------------------------------------


@pytest.mark.parametrize("s", [1, 2, 3])
def test_split_invariance_bitwise(rng, s):
    span = segment_span(s)
    for n in (s, span - s, span, span + s, 2 * span + 7 * s):
        x = rng.standard_normal(n) * 10.0 ** rng.integers(-10, 10, n)
        base = _oneshot(x, s)
        cuts = sorted(set(int(c) for c in rng.integers(0, n + 1, 4)))
        _assert_bitwise(_split_scan(x, s, cuts), base, f"s={s} n={n}")


@pytest.mark.parametrize("threads", THREADS)
def test_thread_invariance_bitwise(rng, threads):
    for s in (1, 3):
        n = 5 * segment_span(s) + 13 * s
        x = _cancellation_corpus(rng, n)
        _assert_bitwise(
            _oneshot(x, s, threads=threads), _oneshot(x, s),
            f"threads={threads} s={s}",
        )


def test_threaded_scan_resumes_mid_segment(rng):
    s = 2
    x = rng.standard_normal(3 * segment_span(s) + 20)
    full = _oneshot(x, s)
    state = fresh_state(x.dtype, s)
    head = lane_scan_compensated(x[:101 * s], OP, s, state, 0)
    tail = lane_scan_compensated(x[101 * s:], OP, s, state, 101 * s, threads=8)
    _assert_bitwise(np.concatenate([head, tail]), full)


def test_session_float_mode_matches_kernel(rng):
    from repro.stream import ScanSession

    x = _cancellation_corpus(rng, 30_000)
    session = ScanSession(op="add", float_mode="compensated")
    parts, pos = [], 0
    while pos < len(x):
        step = int(rng.integers(1, 5000))
        parts.append(session.feed(x[pos:pos + step]))
        pos += step
    _assert_bitwise(np.concatenate(parts), _oneshot(x))


@pytest.mark.parametrize("shards", SHARDS)
@pytest.mark.parametrize("inclusive", [True, False])
def test_sharded_bitwise_identity(rng, tmp_path, shards, inclusive):
    from repro.stream import scan_file_sharded

    s = 2
    span = segment_span(s)
    n = 3 * span + 11 * s  # shard bounds land mid-segment without alignment
    x = _cancellation_corpus(rng, n)
    x.tofile(tmp_path / "in.bin")
    result = scan_file_sharded(
        tmp_path / "in.bin", tmp_path / "out.bin",
        dtype=np.float64, op="add", tuple_size=s, inclusive=inclusive,
        shards=shards, workers=2, chunk_bytes=1 << 14,
        float_mode="compensated",
    )
    assert result.fallback_reason is None
    want = compensated_scan_into(
        x, np.empty_like(x), OP, order=1, tuple_size=s, inclusive=inclusive
    )
    _assert_bitwise(np.fromfile(tmp_path / "out.bin", dtype=np.float64), want)


def test_sharded_crash_resume_bitwise(rng, tmp_path):
    from repro.stream import InjectedFailureError, scan_file_sharded

    x = _cancellation_corpus(rng, 4 * segment_span(1) + 77)
    x.tofile(tmp_path / "in.bin")
    kwargs = dict(
        dtype=np.float64, op="add", shards=4, workers=1,
        chunk_bytes=1 << 13, float_mode="compensated",
        checkpoint=str(tmp_path / "manifest.json"),
    )
    with pytest.raises(InjectedFailureError):
        scan_file_sharded(
            tmp_path / "in.bin", tmp_path / "out.bin",
            fail_after_shards=2, **kwargs,
        )
    result = scan_file_sharded(
        tmp_path / "in.bin", tmp_path / "out.bin", resume=True, **kwargs
    )
    assert result.counters.resumes >= 1
    _assert_bitwise(
        np.fromfile(tmp_path / "out.bin", dtype=np.float64), _oneshot(x)
    )


def test_sharded_exact_floats_fall_back_with_hint(rng, tmp_path):
    from repro.stream import scan_file_sharded

    x = rng.standard_normal(10_000)
    x.tofile(tmp_path / "in.bin")
    result = scan_file_sharded(
        tmp_path / "in.bin", tmp_path / "out.bin",
        dtype=np.float64, op="add", shards=4,
    )
    assert result.fallback_reason is not None
    assert "compensated" in result.fallback_reason
    _assert_bitwise(
        np.fromfile(tmp_path / "out.bin", dtype=np.float64), np.cumsum(x)
    )


def test_sharded_compensated_higher_order_falls_back_compensated(rng, tmp_path):
    from repro.stream import scan_file_sharded

    x = rng.standard_normal(9_000)
    x.tofile(tmp_path / "in.bin")
    result = scan_file_sharded(
        tmp_path / "in.bin", tmp_path / "out.bin",
        dtype=np.float64, op="add", order=2, shards=3,
        float_mode="compensated",
    )
    assert result.fallback_reason is not None
    want = compensated_scan_into(
        x, np.empty_like(x), OP, order=2, tuple_size=1, inclusive=True
    )
    _assert_bitwise(np.fromfile(tmp_path / "out.bin", dtype=np.float64), want)


# -- collect/fold kernels: the sharded driver's building blocks --------------


def test_collect_fold_composition_matches_oneshot(rng):
    s = 2
    span = segment_span(s)
    n = 5 * span + 31 * s
    x = rng.standard_normal(n) * 10.0 ** rng.integers(-5, 5, n)
    base = _oneshot(x, s)
    bounds = [0, 2 * span, 3 * span, n]  # segment-aligned shard cuts
    aggregates, locals_ = [], []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        kernel = CompensatedCollectKernel(OP, x.dtype, s, start=lo)
        parts = [
            kernel.feed(x[c:min(c + 4999, hi)]) for c in range(lo, hi, 4999)
        ]
        locals_.append(np.concatenate(parts))
        aggregates.append(kernel.segment_totals())
    totals = np.concatenate(aggregates)
    state = fresh_state(x.dtype, s)
    chain_hi, chain_lo, _, _ = chain_segments(
        state[HI], state[LO], totals[:, 0], totals[:, 1]
    )
    outs, k = [], 0
    for (lo, hi), local in zip(zip(bounds[:-1], bounds[1:]), locals_):
        segments = -(-(hi - lo) // span)
        chain = np.stack(
            [chain_hi[k:k + segments], chain_lo[k:k + segments]], axis=1
        )
        fold = CompensatedFoldKernel(x.dtype, s, lo, chain)
        for c in range(0, local.size, 7001):
            stop = min(c + 7001, local.size)
            fold.fold(local[c:stop], x[lo + c:lo + stop])
        outs.append(local)
        k += segments
    _assert_bitwise(np.concatenate(outs), base)


# -- special values -----------------------------------------------------------


def test_negative_zero_matches_serial_fold():
    x = np.array([-0.0, 0.0, -0.0, -0.0, 1.0, -1.0, -0.0])
    _assert_bitwise(_oneshot(x), np.cumsum(x))
    runs = np.full(9, -0.0)
    _assert_bitwise(_oneshot(runs), np.full(9, -0.0))


def test_nan_inf_poisoning_deterministic(rng):
    n = 3 * segment_span(1) + 50
    x = rng.standard_normal(n)
    x[100], x[5000], x[9000] = np.inf, np.nan, -np.inf
    base = _oneshot(x)
    _assert_bitwise(_oneshot(x, threads=8), base)
    _assert_bitwise(_split_scan(x, 1, [7, 4096, 10_000]), base)
    assert np.all(np.isnan(base[5000:]))  # NaN poisons every later prefix


def test_denormals_survive_two_sum(rng):
    tiny = np.finfo(np.float64).tiny
    x = rng.choice([tiny / 4, -tiny / 8, tiny / 2], 20_000)
    _assert_bitwise(_oneshot(x, threads=3), _oneshot(x))
    oracle = _oracle(x).astype(np.float64)
    assert np.max(np.abs(_oneshot(x) - oracle)) <= 4 * tiny


# -- scan_into orders, exclusive, and mode resolution -------------------------


def test_order_two_is_iterated_scan(rng):
    x = rng.standard_normal(2 * segment_span(1) + 9)
    out = compensated_scan_into(
        x, np.empty_like(x), OP, order=2, tuple_size=1, inclusive=True
    )
    _assert_bitwise(out, _oneshot(_oneshot(x)))


def test_exclusive_is_shifted_inclusive(rng):
    x = rng.standard_normal(10_000)
    exc = compensated_scan_into(
        x, np.empty_like(x), OP, order=1, tuple_size=1, inclusive=False
    )
    inc = _oneshot(x)
    _assert_bitwise(exc[1:], inc[:-1])
    assert exc[0] == 0.0


def test_resolve_float_mode_semantics():
    assert resolve_float_mode(np.int64, "compensated", None) is None
    assert resolve_float_mode(np.float64, None, None) == "exact"
    assert resolve_float_mode(np.float64, "compensated", None) == "compensated"
    assert resolve_float_mode(np.float64, None, False) == "regrouped"
    assert resolve_float_mode(np.float64, None, True) == "exact"
    # float_mode wins over the legacy tri-state when both are given
    assert resolve_float_mode(np.float64, "compensated", True) == "compensated"


def test_check_compensated_rejects_non_add():
    assert compensated_supported("add", np.float64)
    assert not compensated_supported("max", np.float64)
    assert not compensated_supported("add", np.int64)
    with pytest.raises(TypeError):
        check_compensated(get_op("max"), np.float64)


def test_sharded_compensated_rejects_non_add(rng, tmp_path):
    from repro.stream import scan_file_sharded

    rng.standard_normal(100).tofile(tmp_path / "in.bin")
    with pytest.raises(TypeError):
        scan_file_sharded(
            tmp_path / "in.bin", tmp_path / "out.bin",
            dtype=np.float64, op="max", shards=2, float_mode="compensated",
        )


# -- the planner under the compensated contract -------------------------------


def test_planner_offers_parallel_float_candidates():
    from repro.plan import Machine, Workload, plan_scan

    machine = Machine(cpu_count=8, block_bytes=1 << 20,
                      parallel_cutover_bytes=1 << 20)
    workload = Workload(nbytes=64 << 20, dtype="float64", op="add",
                        float_mode="compensated", source="memory")
    plan = plan_scan(workload, machine=machine)
    labels = [c.label for c in plan.candidates]
    assert any(label.startswith("threaded") for label in labels)
    assert all(
        c.params.get("float_mode") == "compensated" for c in plan.candidates
    )
    # Exact-mode floats stay serial-only, and the rationale says why.
    exact = plan_scan(
        Workload(nbytes=64 << 20, dtype="float64", op="add", source="memory"),
        machine=machine,
    )
    assert [c.label for c in exact.candidates] == ["serial"]
    assert "compensated" in exact.reason


def test_planner_tiny_shortcut_honors_float_mode(rng):
    """Regression: the tiny-input serial shortcut must still execute
    under the compensated contract, not the naive fold."""
    from repro.plan import auto_scan

    x = _cancellation_corpus(rng, 5_000)  # well under TINY_BYTES
    _assert_bitwise(auto_scan(x, float_mode="compensated"), _oneshot(x))


@pytest.mark.parametrize("force", [None, "serial", "threaded:2"])
def test_planned_float_execution_bitwise(rng, force):
    from repro.plan import auto_scan

    x = _cancellation_corpus(rng, 60_000)
    _assert_bitwise(
        auto_scan(x, float_mode="compensated", force=force), _oneshot(x)
    )


def test_planner_rejects_process_pool_for_floats(rng):
    from repro.plan import auto_scan

    x = _cancellation_corpus(rng, 60_000)
    with pytest.raises(ValueError):
        auto_scan(x, float_mode="compensated", force="parallel:2")


# -- api surface ---------------------------------------------------------------


def test_api_float_mode_paths_agree(rng):
    import repro

    x = _cancellation_corpus(rng, 50_000)
    want = _oneshot(x)
    _assert_bitwise(repro.scan(x, float_mode="compensated"), want)
    _assert_bitwise(
        repro.scan(x, float_mode="compensated", engine="host"), want
    )
    _assert_bitwise(
        repro.scan(x, float_mode="compensated", engine="threaded"), want
    )
    with pytest.raises(ValueError):
        repro.scan(x, float_mode="compensated", engine="sam")


def test_api_scan_file_float_mode(rng, tmp_path):
    import repro

    x = _cancellation_corpus(rng, 30_000)
    x.tofile(tmp_path / "in.bin")
    repro.scan_file(
        tmp_path / "in.bin", tmp_path / "out.bin",
        dtype="float64", float_mode="compensated", shards=3,
        chunk_bytes=1 << 14,
    )
    _assert_bitwise(
        np.fromfile(tmp_path / "out.bin", dtype=np.float64), _oneshot(x)
    )


def test_regrouped_mode_matches_legacy_exact_false(rng, tmp_path):
    from repro.stream import scan_file_sharded

    x = rng.standard_normal(20_000)
    x.tofile(tmp_path / "in.bin")
    new = scan_file_sharded(
        tmp_path / "in.bin", tmp_path / "new.bin",
        dtype=np.float64, op="add", shards=3, chunk_bytes=1 << 14,
        float_mode="regrouped",
    )
    legacy = scan_file_sharded(
        tmp_path / "in.bin", tmp_path / "legacy.bin",
        dtype=np.float64, op="add", shards=3, chunk_bytes=1 << 14,
        exact=False,
    )
    assert new.fallback_reason is None and legacy.fallback_reason is None
    _assert_bitwise(
        np.fromfile(tmp_path / "new.bin", dtype=np.float64),
        np.fromfile(tmp_path / "legacy.bin", dtype=np.float64),
    )
