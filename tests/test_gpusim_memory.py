"""Unit tests for the global-memory model: coalescing, bounds, counters."""

import numpy as np
import pytest

from repro.gpusim.errors import MemoryFault
from repro.gpusim.memory import SEGMENT_BYTES, GlobalMemory


@pytest.fixture
def gmem():
    return GlobalMemory()


class TestAllocation:
    def test_alloc_is_zeroed(self, gmem):
        array = gmem.alloc("a", 16, np.int32)
        assert np.array_equal(array.data, np.zeros(16, dtype=np.int32))

    def test_alloc_with_fill(self, gmem):
        array = gmem.alloc("a", 4, np.int64, fill=7)
        assert np.array_equal(array.data, np.full(4, 7, dtype=np.int64))

    def test_alloc_generates_no_traffic(self, gmem):
        gmem.alloc("a", 1024, np.int32)
        assert gmem.stats.global_words_total == 0

    def test_duplicate_name_rejected(self, gmem):
        gmem.alloc("a", 4, np.int32)
        with pytest.raises(MemoryFault, match="already allocated"):
            gmem.alloc("a", 4, np.int32)

    def test_negative_size_rejected(self, gmem):
        with pytest.raises(MemoryFault, match="negative"):
            gmem.alloc("a", -1, np.int32)

    def test_alloc_like_copies_host_data(self, gmem):
        values = np.arange(10, dtype=np.int32)
        array = gmem.alloc_like("a", values)
        assert np.array_equal(array.data, values)

    def test_get_and_free(self, gmem):
        gmem.alloc("a", 4, np.int32)
        assert gmem.get("a").name == "a"
        gmem.free("a")
        with pytest.raises(MemoryFault, match="no global array"):
            gmem.get("a")

    def test_free_unknown(self, gmem):
        with pytest.raises(MemoryFault, match="unknown array"):
            gmem.free("ghost")


class TestCoalescing:
    def test_contiguous_warp_int32_is_one_transaction(self, gmem):
        # 32 lanes x 4 bytes = 128 bytes = exactly one segment.
        array = gmem.alloc("a", 64, np.int32)
        gmem.load(array, np.arange(32))
        assert gmem.stats.global_read_transactions == 1

    def test_contiguous_warp_int64_is_two_transactions(self, gmem):
        # 32 lanes x 8 bytes = 256 bytes = two segments.
        array = gmem.alloc("a", 64, np.int64)
        gmem.load(array, np.arange(32))
        assert gmem.stats.global_read_transactions == 2

    def test_strided_access_multiplies_transactions(self, gmem):
        # Stride-32 int32: every lane in its own segment.
        array = gmem.alloc("a", 32 * 32, np.int32)
        gmem.load(array, np.arange(32) * 32)
        assert gmem.stats.global_read_transactions == 32

    def test_same_word_broadcast_is_one_transaction(self, gmem):
        array = gmem.alloc("a", 4, np.int32)
        gmem.load(array, np.zeros(32, dtype=np.int64))
        assert gmem.stats.global_read_transactions == 1

    def test_multiple_warps_counted_per_group(self, gmem):
        array = gmem.alloc("a", 128, np.int32)
        gmem.load(array, np.arange(64))
        assert gmem.stats.global_read_transactions == 2

    def test_unaligned_straddle_costs_two(self, gmem):
        # 32 contiguous int32 starting at element 1 straddle a boundary.
        array = gmem.alloc("a", 64, np.int32)
        gmem.load(array, 1 + np.arange(32))
        assert gmem.stats.global_read_transactions == 2


class TestTrafficCounters:
    def test_words_and_bytes(self, gmem):
        array = gmem.alloc("a", 100, np.int64)
        gmem.load(array, np.arange(10))
        gmem.store(array, np.arange(4), np.arange(4))
        assert gmem.stats.global_words_read == 10
        assert gmem.stats.global_bytes_read == 80
        assert gmem.stats.global_words_written == 4
        assert gmem.stats.global_bytes_written == 32
        assert gmem.stats.global_words_total == 14

    def test_per_array_counters(self, gmem):
        a = gmem.alloc("a", 10, np.int32)
        b = gmem.alloc("b", 10, np.int32)
        gmem.load(a, np.arange(5))
        gmem.store(b, np.arange(3), np.ones(3))
        assert a.words_read == 5 and a.words_written == 0
        assert b.words_read == 0 and b.words_written == 3

    def test_masked_lanes_are_free(self, gmem):
        array = gmem.alloc("a", 32, np.int32)
        mask = np.zeros(32, dtype=bool)
        mask[:5] = True
        gmem.load(array, np.arange(32), mask=mask)
        assert gmem.stats.global_words_read == 5


class TestLoadStore:
    def test_round_trip(self, gmem, rng):
        array = gmem.alloc("a", 50, np.int32)
        values = rng.integers(-10, 10, 50).astype(np.int32)
        gmem.store(array, np.arange(50), values)
        assert np.array_equal(gmem.load(array, np.arange(50)), values)

    def test_masked_load_returns_zero_for_inactive(self, gmem):
        array = gmem.alloc("a", 8, np.int32, fill=9)
        mask = np.array([True, False, True, False])
        out = gmem.load(array, np.arange(4), mask=mask)
        assert np.array_equal(out, np.array([9, 0, 9, 0], dtype=np.int32))

    def test_masked_store_skips_inactive(self, gmem):
        array = gmem.alloc("a", 4, np.int32)
        mask = np.array([True, False, True, False])
        gmem.store(array, np.arange(4), np.full(4, 5), mask=mask)
        assert np.array_equal(array.data, np.array([5, 0, 5, 0], dtype=np.int32))

    def test_out_of_bounds_load(self, gmem):
        array = gmem.alloc("a", 4, np.int32)
        with pytest.raises(MemoryFault, match="out-of-bounds"):
            gmem.load(array, np.array([4]))

    def test_negative_index(self, gmem):
        array = gmem.alloc("a", 4, np.int32)
        with pytest.raises(MemoryFault, match="out-of-bounds"):
            gmem.store(array, np.array([-1]), np.array([1]))

    def test_scalar_access(self, gmem):
        array = gmem.alloc("a", 4, np.int32)
        gmem.store_scalar(array, 2, 99)
        assert gmem.load_scalar(array, 2) == 99
        assert gmem.stats.global_read_transactions == 1
        assert gmem.stats.global_write_transactions == 1

    def test_store_casts_to_array_dtype(self, gmem):
        array = gmem.alloc("a", 2, np.int32)
        gmem.store(array, np.array([0]), np.array([2**33 + 3], dtype=np.int64))
        assert array.data[0] == 3  # 2^33 + 3 wraps to 3 in int32


class TestPolling:
    def test_poll_counts_failures(self, gmem):
        flags = gmem.alloc("flags", 4, np.int64)
        gmem.store(flags, np.array([1]), np.array([5]))
        ready = gmem.poll(flags, np.arange(4), expected=5)
        assert list(ready) == [False, True, False, False]
        assert gmem.stats.flag_polls == 4
        assert gmem.stats.failed_flag_polls == 3

    def test_fence_counted(self, gmem):
        gmem.fence()
        gmem.fence()
        assert gmem.stats.fences == 2


class TestStatsMerge:
    def test_merge_and_copy(self):
        from repro.gpusim.counters import TrafficStats

        a = TrafficStats(global_words_read=3, barriers=1)
        b = TrafficStats(global_words_read=2, fences=4)
        c = a.copy()
        a.merge(b)
        assert a.global_words_read == 5 and a.fences == 4 and a.barriers == 1
        assert c.global_words_read == 3  # copy unaffected

    def test_words_per_element_validation(self):
        from repro.gpusim.counters import TrafficStats

        with pytest.raises(ValueError, match="positive"):
            TrafficStats().words_per_element(0)

    def test_str_omits_zero_fields(self):
        from repro.gpusim.counters import TrafficStats

        text = str(TrafficStats(barriers=2))
        assert "barriers=2" in text
        assert "fences" not in text
