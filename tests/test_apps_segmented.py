"""Tests for segmented scans and the packed lifted operator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import small_sam
from repro.apps.segmented import segment_flags_from_lengths, segmented_scan
from repro.ops import ADD, MAX, get_op
from repro.ops.segmented import make_segmented_op, pack, packed_dtype, unpack


def segmented_oracle(values, flags, op="add"):
    """Per-segment serial scan."""
    op = get_op(op)
    out = values.copy()
    for i in range(1, len(values)):
        if not flags[i]:
            out[i] = op.apply(out[i - 1 : i], out[i : i + 1])[0]
    return out


class TestPacking:
    def test_pack_unpack_round_trip(self, rng):
        values = rng.integers(-(2**31), 2**31 - 1, 500).astype(np.int32)
        flags = rng.random(500) < 0.3
        flags[0] = True
        v, f = unpack(pack(values, flags), np.int32)
        assert np.array_equal(v, values)
        assert np.array_equal(f, flags)

    def test_unsigned_values(self, rng):
        values = rng.integers(0, 2**32 - 1, 100, dtype=np.uint64).astype(np.uint32)
        flags = rng.random(100) < 0.5
        v, f = unpack(pack(values, flags), np.uint32)
        assert np.array_equal(v, values)
        assert np.array_equal(f, flags)

    def test_packed_dtype(self):
        assert packed_dtype(np.int32) == np.int64
        assert packed_dtype(np.uint32) == np.uint64

    def test_rejects_64bit_values(self):
        with pytest.raises(TypeError, match="int32/uint32"):
            packed_dtype(np.int64)

    def test_misaligned_shapes(self):
        with pytest.raises(ValueError, match="align"):
            pack(np.zeros(3, dtype=np.int32), np.zeros(4, dtype=bool))

    def test_unpack_wrong_dtype(self):
        with pytest.raises(TypeError, match="expected packed dtype"):
            unpack(np.zeros(3, dtype=np.int32), np.int32)


class TestLiftedOperator:
    def test_is_associative(self, rng):
        op = make_segmented_op(ADD, np.int32)
        values = rng.integers(-100, 100, 60).astype(np.int32)
        flags = rng.random(60) < 0.25
        packed = pack(values, flags)
        a, b, c = packed[:20], packed[20:40], packed[40:]
        # elementwise associativity on vectors
        left = op.apply(op.apply(a, b), c)
        right = op.apply(a, op.apply(b, c))
        assert np.array_equal(left, right)

    def test_identity(self, rng):
        op = make_segmented_op(ADD, np.int32)
        values = rng.integers(-100, 100, 30).astype(np.int32)
        flags = rng.random(30) < 0.5
        packed = pack(values, flags)
        identity = np.full(30, op.identity(np.int64), dtype=np.int64)
        assert np.array_equal(op.apply(identity, packed), packed)

    def test_flag_resets_accumulation(self):
        op = make_segmented_op(ADD, np.int32)
        left = pack(np.array([5], dtype=np.int32), np.array([False]))
        right_head = pack(np.array([3], dtype=np.int32), np.array([True]))
        combined = op.apply(left, right_head)
        value, flag = unpack(combined, np.int32)
        assert value[0] == 3 and flag[0]


class TestSegmentedScan:
    def test_flags_from_lengths(self):
        flags = segment_flags_from_lengths([2, 1, 3])
        assert flags.astype(int).tolist() == [1, 0, 1, 1, 0, 0]

    def test_flags_from_lengths_validation(self):
        with pytest.raises(ValueError, match="positive"):
            segment_flags_from_lengths([2, 0])

    @pytest.mark.parametrize("method", ["subtract", "lifted"])
    def test_matches_oracle(self, rng, method):
        values = rng.integers(-50, 50, 400).astype(np.int32)
        flags = rng.random(400) < 0.1
        flags[0] = True
        got = segmented_scan(values, flags, method=method)
        assert np.array_equal(got, segmented_oracle(values, flags))

    def test_max_uses_lifted_automatically(self, rng):
        values = rng.integers(-50, 50, 200).astype(np.int32)
        flags = segment_flags_from_lengths([50, 100, 50])
        got = segmented_scan(values, flags, op="max")
        assert np.array_equal(got, segmented_oracle(values, flags, op="max"))

    def test_xor_uses_subtract_trick(self, rng):
        values = rng.integers(0, 2**31, 300).astype(np.int32)
        flags = segment_flags_from_lengths([100, 200])
        got = segmented_scan(values, flags, op="xor")
        assert np.array_equal(got, segmented_oracle(values, flags, op="xor"))

    def test_through_sam_engine(self, rng):
        values = rng.integers(-20, 20, 600).astype(np.int32)
        flags = segment_flags_from_lengths([200, 150, 250])
        engine = small_sam(threads_per_block=32, items_per_thread=1, num_blocks=3)
        got = segmented_scan(values, flags, method="lifted", engine=engine)
        assert np.array_equal(got, segmented_oracle(values, flags))

    def test_single_segment_is_plain_scan(self, rng):
        from repro.core.host import host_scan

        values = rng.integers(-50, 50, 128).astype(np.int32)
        flags = np.zeros(128, dtype=bool)
        flags[0] = True
        assert np.array_equal(segmented_scan(values, flags), host_scan(values))

    def test_all_heads_is_identity_map(self, rng):
        values = rng.integers(-50, 50, 64).astype(np.int32)
        flags = np.ones(64, dtype=bool)
        assert np.array_equal(segmented_scan(values, flags), values)

    def test_requires_head_at_zero(self, rng):
        values = np.ones(4, dtype=np.int32)
        flags = np.array([False, True, False, False])
        with pytest.raises(ValueError, match="flags\\[0\\]"):
            segmented_scan(values, flags)

    def test_empty(self):
        out = segmented_scan(np.array([], dtype=np.int32), np.array([], dtype=bool))
        assert out.size == 0

    def test_subtract_requires_invertible(self, rng):
        values = np.ones(4, dtype=np.int32)
        flags = np.array([True, False, False, False])
        with pytest.raises(ValueError, match="not invertible"):
            segmented_scan(values, flags, op=MAX, method="subtract")

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(st.integers(-1000, 1000), min_size=1, max_size=150),
        seed=st.integers(0, 1000),
    )
    def test_property_subtract_equals_lifted(self, data, seed):
        values = np.array(data, dtype=np.int32)
        flag_rng = np.random.default_rng(seed)
        flags = flag_rng.random(len(values)) < 0.2
        flags[0] = True
        sub = segmented_scan(values, flags, method="subtract")
        lifted = segmented_scan(values, flags, method="lifted")
        assert np.array_equal(sub, lifted)
