"""Unit tests for the analytic performance model."""

import numpy as np
import pytest

from repro.gpusim.spec import K40, TITAN_X
from repro.perf import DEFAULT_CALIBRATION, PerformanceModel, UnsupportedProblem
from repro.perf.model import _interp_anchor


class TestInterpolation:
    def test_exact_anchor(self):
        assert _interp_anchor({1: 10.0, 5: 50.0}, 5, 0.0) == 50.0

    def test_between_anchors(self):
        assert _interp_anchor({1: 10.0, 5: 50.0}, 3, 0.0) == pytest.approx(30.0)

    def test_extrapolates_past_last(self):
        # Slope between the last two anchors continues.
        assert _interp_anchor({2: 20.0, 8: 80.0}, 10, 0.0) == pytest.approx(100.0)

    def test_below_first_clamps(self):
        assert _interp_anchor({2: 20.0, 8: 80.0}, 1, 0.0) == 20.0

    def test_empty_uses_fallback(self):
        assert _interp_anchor({}, 3, 42.0) == 42.0

    def test_single_anchor(self):
        assert _interp_anchor({1: 7.0}, 5, 0.0) == 7.0


class TestModelBasics:
    def setup_method(self):
        self.model = PerformanceModel()

    def test_time_positive_and_increasing(self):
        times = [
            self.model.time_seconds("sam", "Titan X", 32, 2**e) for e in range(10, 31)
        ]
        assert all(t > 0 for t in times)
        assert times == sorted(times)

    def test_throughput_saturates(self):
        # Throughput is monotone nondecreasing over the sweep (the
        # figures' characteristic ramp-then-plateau shape).
        tputs = [
            self.model.throughput("sam", "Titan X", 32, 2**e) for e in range(10, 31)
        ]
        assert all(b >= a * 0.999 for a, b in zip(tputs, tputs[1:]))

    def test_accepts_spec_objects(self):
        via_name = self.model.throughput("sam", "Titan X", 32, 2**20)
        via_spec = self.model.throughput("sam", TITAN_X, 32, 2**20)
        assert via_name == via_spec

    def test_unknown_gpu(self):
        with pytest.raises(KeyError, match="no calibration for GPU"):
            self.model.throughput("sam", "H100", 32, 2**20)

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError, match="no calibration for algorithm"):
            self.model.throughput("quantum", "K40", 32, 2**20)

    def test_invalid_n(self):
        with pytest.raises(ValueError, match="n must be"):
            self.model.time_seconds("sam", "K40", 32, 0)

    def test_invalid_order(self):
        with pytest.raises(ValueError, match="order and tuple_size"):
            self.model.time_seconds("sam", "K40", 32, 100, order=0)

    def test_cudpp_unsupported_size(self):
        with pytest.raises(UnsupportedProblem):
            self.model.time_seconds("cudpp", "Titan X", 32, 2**26)

    def test_sweep_maps_unsupported_to_none(self):
        out = self.model.sweep("cudpp", "Titan X", 32, [2**20, 2**26])
        assert out[0] is not None and out[1] is None


class TestModelStructure:
    def setup_method(self):
        self.model = PerformanceModel()

    def test_higher_order_slows_sam_sublinearly(self):
        # SAM iterates only the computation stage: far better than 1/q.
        base = self.model.throughput("sam", "Titan X", 32, 2**28)
        q8 = self.model.throughput("sam", "Titan X", 32, 2**28, order=8)
        assert q8 < base
        assert q8 > base / 8 * 1.5

    def test_higher_order_slows_cub_linearly(self):
        base = self.model.throughput("cub", "Titan X", 32, 2**28)
        q8 = self.model.throughput("cub", "Titan X", 32, 2**28, order=8)
        assert q8 == pytest.approx(base / 8, rel=0.01)

    def test_memcpy_is_upper_bound_at_saturation(self):
        for gpu in ("Titan X", "K40"):
            for bits in (32, 64):
                memcpy = self.model.throughput("memcpy", gpu, bits, 2**29)
                sam = self.model.throughput("sam", gpu, bits, 2**29)
                assert sam <= memcpy * 1.001

    def test_64bit_roughly_halves_item_rate(self):
        for alg in ("sam", "cub", "thrust"):
            r32 = self.model.throughput(alg, "Titan X", 32, 2**28)
            r64 = self.model.throughput(alg, "Titan X", 64, 2**28)
            assert 1.5 <= r32 / r64 <= 2.5

    def test_order_and_tuple_compose(self):
        # The combined case (paper future work): cost at least the max
        # of the individual generalizations.
        single = self.model.time_seconds("sam", "K40", 32, 2**24, order=4)
        tup = self.model.time_seconds("sam", "K40", 32, 2**24, tuple_size=4)
        both = self.model.time_seconds("sam", "K40", 32, 2**24, order=4, tuple_size=4)
        assert both >= max(single, tup) * 0.999

    def test_calibration_tables_complete(self):
        for (gpu, bits), cal in DEFAULT_CALIBRATION.items():
            assert cal.gpu_name == gpu and cal.word_bits == bits
            for name in ("sam", "cub", "thrust", "cudpp", "memcpy", "chained"):
                assert name in cal.algorithms, (gpu, bits, name)

    def test_chained_never_beats_sam(self):
        for e in range(10, 31):
            sam = self.model.throughput("sam", "Titan X", 32, 2**e)
            chained = self.model.throughput("chained", "Titan X", 32, 2**e)
            assert chained <= sam * 1.001
