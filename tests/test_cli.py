"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestScanCommand:
    def test_host_scan_matches_numpy(self, tmp_path, rng):
        values = rng.integers(-1000, 1000, 5000).astype(np.int32)
        raw = tmp_path / "in.bin"
        out = tmp_path / "out.bin"
        values.tofile(raw)
        assert main(["scan", str(raw), str(out)]) == 0
        got = np.fromfile(out, dtype=np.int32)
        assert np.array_equal(got, np.cumsum(values, dtype=np.int32))

    def test_engines_agree(self, tmp_path, rng):
        values = rng.integers(-100, 100, 3000).astype(np.int64)
        raw = tmp_path / "in.bin"
        values.tofile(raw)
        outputs = {}
        for name in ("host", "parallel", "sam"):
            out = tmp_path / f"out_{name}.bin"
            assert main([
                "scan", str(raw), str(out), "--dtype", "int64",
                "--order", "2", "--tuple-size", "2", "--engine", name,
            ]) == 0
            outputs[name] = np.fromfile(out, dtype=np.int64)
        assert np.array_equal(outputs["host"], outputs["parallel"])
        assert np.array_equal(outputs["host"], outputs["sam"])

    def test_exclusive_and_op(self, tmp_path, rng):
        values = rng.integers(0, 100, 2000).astype(np.int32)
        raw = tmp_path / "in.bin"
        out = tmp_path / "out.bin"
        values.tofile(raw)
        assert main([
            "scan", str(raw), str(out), "--op", "max", "--exclusive",
        ]) == 0
        import repro

        got = np.fromfile(out, dtype=np.int32)
        expected = repro.scan(values, op="max", inclusive=False)
        assert np.array_equal(got, expected)

    def test_unknown_engine_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["scan", "a", "b", "--engine", "warp_drive"]
            )

    @pytest.mark.parametrize("engine,scheme", [
        ("parallel", "decoupled"),
        ("parallel_chained", "chained"),
    ])
    def test_workers_honored_for_both_parallel_engines(
        self, tmp_path, rng, monkeypatch, engine, scheme
    ):
        # --workers used to be silently ignored for parallel_chained.
        import repro.parallel

        captured = {}
        real = repro.parallel.ParallelSamScan

        def spy(*args, **kwargs):
            captured.update(kwargs)
            return real(*args, **kwargs)

        monkeypatch.setattr(repro.parallel, "ParallelSamScan", spy)
        values = rng.integers(-100, 100, 2000).astype(np.int32)
        raw = tmp_path / "in.bin"
        out = tmp_path / "out.bin"
        values.tofile(raw)
        assert main([
            "scan", str(raw), str(out), "--engine", engine, "--workers", "2",
        ]) == 0
        assert captured["num_workers"] == 2
        assert captured["carry_scheme"] == scheme
        got = np.fromfile(out, dtype=np.int32)
        assert np.array_equal(got, np.cumsum(values, dtype=np.int32))


class TestStreamCommand:
    def test_stream_matches_scan_bit_identically(self, tmp_path, rng):
        # The acceptance check: a file larger than the chunk budget,
        # streamed, must produce the same bytes as one-shot `scan`.
        values = rng.integers(-1000, 1000, 60_000).astype(np.int32)
        raw = tmp_path / "in.bin"
        values.tofile(raw)
        opts = ["--order", "2", "--tuple-size", "3", "--exclusive"]
        assert main(["scan", str(raw), str(tmp_path / "a.bin"), *opts]) == 0
        assert main([
            "stream", str(raw), str(tmp_path / "b.bin"), *opts,
            "--chunk-bytes", "8192",
        ]) == 0
        assert (tmp_path / "a.bin").read_bytes() == (tmp_path / "b.bin").read_bytes()

    def test_interrupted_stream_resumes(self, tmp_path, rng):
        values = rng.integers(-1000, 1000, 50_000).astype(np.int32)
        raw = tmp_path / "in.bin"
        values.tofile(raw)
        out = tmp_path / "out.bin"
        ckpt = tmp_path / "job.ckpt"
        args = [
            "stream", str(raw), str(out), "--chunk-bytes", "4096",
            "--checkpoint", str(ckpt), "--checkpoint-every", "2",
        ]
        assert main(args + ["--fail-after-chunks", "9"]) == 1
        assert ckpt.exists()
        assert main(args + ["--resume"]) == 0
        assert not ckpt.exists()
        got = np.fromfile(out, dtype=np.int32)
        assert np.array_equal(got, np.cumsum(values, dtype=np.int32))

    def test_stream_on_parallel_engine(self, tmp_path, rng):
        values = rng.integers(-100, 100, 70_000).astype(np.int64)
        raw = tmp_path / "in.bin"
        values.tofile(raw)
        out = tmp_path / "out.bin"
        assert main([
            "stream", str(raw), str(out), "--dtype", "int64",
            "--engine", "parallel", "--workers", "2",
            "--chunk-bytes", str(1 << 18),
        ]) == 0
        got = np.fromfile(out, dtype=np.int64)
        assert np.array_equal(got, np.cumsum(values, dtype=np.int64))


class TestCompressionCommands:
    def test_round_trip(self, tmp_path, rng):
        values = rng.integers(-10000, 10000, 5000).astype(np.int32)
        raw = tmp_path / "data.bin"
        packed = tmp_path / "data.samd"
        restored = tmp_path / "restored.bin"
        values.tofile(raw)

        assert main(["compress", str(raw), str(packed)]) == 0
        assert packed.stat().st_size < raw.stat().st_size * 1.2
        assert main(["decompress", str(packed), str(restored)]) == 0
        assert np.array_equal(np.fromfile(restored, dtype=np.int32), values)

    def test_explicit_order_and_tuple(self, tmp_path, rng):
        values = rng.integers(-100, 100, 4000).astype(np.int64)
        raw = tmp_path / "data.bin"
        packed = tmp_path / "data.samd"
        restored = tmp_path / "restored.bin"
        values.tofile(raw)
        assert main([
            "compress", str(raw), str(packed),
            "--dtype", "int64", "--order", "2", "--tuple-size", "2",
        ]) == 0
        assert main(["decompress", str(packed), str(restored)]) == 0
        assert np.array_equal(np.fromfile(restored, dtype=np.int64), values)


class TestReportingCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "C1060" in out and "7.32" in out

    def test_single_figure(self, capsys):
        assert main(["figures", "fig15"]) == 0
        out = capsys.readouterr().out
        assert "chained" in out and "SAM" in out

    def test_checks_pass(self, capsys):
        assert main(["checks"]) == 0
        out = capsys.readouterr().out
        assert "FAIL" not in out
        assert "checks pass" in out

    def test_traffic(self, capsys):
        assert main(["traffic", "--n", "8192"]) == 0
        out = capsys.readouterr().out
        assert "sam" in out and "thrust" in out
