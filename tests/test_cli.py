"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCompressionCommands:
    def test_round_trip(self, tmp_path, rng):
        values = rng.integers(-10000, 10000, 5000).astype(np.int32)
        raw = tmp_path / "data.bin"
        packed = tmp_path / "data.samd"
        restored = tmp_path / "restored.bin"
        values.tofile(raw)

        assert main(["compress", str(raw), str(packed)]) == 0
        assert packed.stat().st_size < raw.stat().st_size * 1.2
        assert main(["decompress", str(packed), str(restored)]) == 0
        assert np.array_equal(np.fromfile(restored, dtype=np.int32), values)

    def test_explicit_order_and_tuple(self, tmp_path, rng):
        values = rng.integers(-100, 100, 4000).astype(np.int64)
        raw = tmp_path / "data.bin"
        packed = tmp_path / "data.samd"
        restored = tmp_path / "restored.bin"
        values.tofile(raw)
        assert main([
            "compress", str(raw), str(packed),
            "--dtype", "int64", "--order", "2", "--tuple-size", "2",
        ]) == 0
        assert main(["decompress", str(packed), str(restored)]) == 0
        assert np.array_equal(np.fromfile(restored, dtype=np.int64), values)


class TestReportingCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "C1060" in out and "7.32" in out

    def test_single_figure(self, capsys):
        assert main(["figures", "fig15"]) == 0
        out = capsys.readouterr().out
        assert "chained" in out and "SAM" in out

    def test_checks_pass(self, capsys):
        assert main(["checks"]) == 0
        out = capsys.readouterr().out
        assert "FAIL" not in out
        assert "checks pass" in out

    def test_traffic(self, capsys):
        assert main(["traffic", "--n", "8192"]) == 0
        out = capsys.readouterr().out
        assert "sam" in out and "thrust" in out
