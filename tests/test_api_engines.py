"""Tests for the engine= routing in the public API."""

import numpy as np


import repro
from conftest import make_int_array, small_sam
from repro.baselines import DecoupledLookbackScan, StreamScan
from repro.reference import prefix_sum_serial


class TestEngineParameter:
    def test_prefix_sum_through_sam(self, rng):
        values = make_int_array(rng, 3000)
        host = repro.prefix_sum(values, order=2, tuple_size=2)
        via_engine = repro.prefix_sum(
            values, order=2, tuple_size=2, engine=small_sam()
        )
        assert np.array_equal(host, via_engine)

    def test_scan_through_baseline(self, rng):
        values = make_int_array(rng, 2000)
        engine = StreamScan(threads_per_block=64, items_per_thread=2)
        assert np.array_equal(
            repro.scan(values, op="max", engine=engine),
            repro.scan(values, op="max"),
        )

    def test_exclusive_through_engine(self, rng):
        values = make_int_array(rng, 1500)
        engine = DecoupledLookbackScan(threads_per_block=64, items_per_thread=2)
        assert np.array_equal(
            repro.prefix_sum(values, inclusive=False, engine=engine),
            prefix_sum_serial(values, inclusive=False),
        )

    def test_delta_decode_through_engine(self, rng):
        values = make_int_array(rng, 2500)
        deltas = repro.delta_encode(values, order=3, tuple_size=2)
        decoded = repro.delta_decode(
            deltas, order=3, tuple_size=2, engine=small_sam()
        )
        assert np.array_equal(decoded, values)

    def test_custom_op_object_through_engine(self, rng):
        from repro.ops import MAX

        values = make_int_array(rng, 800)
        got = repro.scan(values, op=MAX, engine=small_sam())
        assert np.array_equal(got, prefix_sum_serial(values, op="max"))

    def test_none_engine_is_host_path(self, rng):
        values = make_int_array(rng, 100)
        assert np.array_equal(
            repro.prefix_sum(values, engine=None), prefix_sum_serial(values)
        )
