"""The threaded in-memory lane kernel against the serial kernel layer.

The threaded kernel's contract is *bit identity with the serial kernel
for every dtype at default settings* — integers via the associative
slab splice, floats via delegation to the exact serial passes — plus
determinism: the slab partition is a pure function of the requested
thread count, so results never depend on pool scheduling, core count,
or oversubscription.  These tests force the parallel path with
``cutover_bytes=0`` so small grids exercise the splice/fold machinery
rather than the serial fallback.
"""

import numpy as np
import pytest

from repro import kernels
from repro.kernels import (
    LaneKernel,
    ThreadedLaneKernel,
    ThreadedScan,
    resolve_threads,
    threaded_fold_lanes,
    threaded_lane_scan,
    threaded_scan_into,
)
from repro.kernels.threaded import _slab_bounds
from repro.ops import get_op

THREADS = [1, 2, 3, 8]
TUPLE_SIZES = [1, 4, 33]


def _data(rng, n, dtype):
    dt = np.dtype(dtype)
    if dt.kind == "f":
        return rng.standard_normal(n).astype(dt)
    lo = 0 if dt.kind == "u" else -50
    return rng.integers(lo, 50, n).astype(dt)


def _assert_bitwise(got, want, msg=""):
    got, want = np.asarray(got), np.asarray(want)
    assert got.dtype == want.dtype, msg
    assert got.tobytes() == want.tobytes(), msg


def _slab_boundary_sizes(s, threads):
    """Lengths straddling every slab-partition edge case."""
    m = threads
    return sorted(
        {0, 1, s - 1, s, s + 1, s * (m - 1), s * m - 1, s * m, s * m + 1,
         s * (m + 3) + max(0, s - 2), s * 4 * m + 7}
    )


# -- bit-identity grid ---------------------------------------------------


@pytest.mark.parametrize("opname", ["add", "max", "xor"])
@pytest.mark.parametrize("dtype", ["int32", "int64", "uint64"])
@pytest.mark.parametrize("tuple_size", TUPLE_SIZES)
@pytest.mark.parametrize("threads", THREADS)
def test_threaded_scan_into_bit_identical(opname, dtype, tuple_size, threads):
    op = get_op(opname)
    rng = np.random.default_rng(hash((opname, dtype, tuple_size, threads)) % 2**32)
    for n in _slab_boundary_sizes(tuple_size, threads):
        values = _data(rng, n, dtype)
        for order in (1, 2, 3):
            for inclusive in (True, False):
                want = kernels.scan_into(
                    values, np.empty_like(values), op,
                    order=order, tuple_size=tuple_size, inclusive=inclusive,
                )
                got = threaded_scan_into(
                    values, np.empty_like(values), op,
                    order=order, tuple_size=tuple_size, inclusive=inclusive,
                    threads=threads, cutover_bytes=0,
                )
                _assert_bitwise(
                    got, want,
                    f"n={n} order={order} inclusive={inclusive} "
                    f"threads={threads}",
                )


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("tuple_size", [1, 4])
def test_threaded_float_default_is_exact_serial(threads, tuple_size):
    """Floats at default settings stay byte-identical — NaN, -0.0 and all."""
    op = get_op("add")
    rng = np.random.default_rng(99)
    values = rng.standard_normal(10 * tuple_size * threads + 3)
    values[::7] = -0.0
    values[3::11] = np.nan
    values[5::13] = np.inf
    for order in (1, 2, 3):
        want = kernels.scan_into(
            values, np.empty_like(values), op, order=order,
            tuple_size=tuple_size,
        )
        got = threaded_scan_into(
            values, np.empty_like(values), op, order=order,
            tuple_size=tuple_size, threads=threads, cutover_bytes=0,
        )
        _assert_bitwise(got, want, f"order={order} threads={threads}")


def test_threaded_float_inexact_is_deterministic():
    """``exact=False`` regroups float rounding but never randomizes it."""
    op = get_op("add")
    rng = np.random.default_rng(5)
    values = rng.standard_normal(4096)
    runs = [
        threaded_scan_into(
            values, np.empty_like(values), op, threads=4,
            exact=False, cutover_bytes=0,
        )
        for _ in range(3)
    ]
    _assert_bitwise(runs[1], runs[0])
    _assert_bitwise(runs[2], runs[0])


def test_oversubscription_determinism():
    """threads=8 on any machine gives the same bytes as the partition says."""
    op = get_op("add")
    rng = np.random.default_rng(11)
    values = rng.integers(-100, 100, 100_003).astype(np.int64)
    want = threaded_lane_scan(values, op, 3, threads=8, cutover_bytes=0)
    for _ in range(3):
        got = threaded_lane_scan(values, op, 3, threads=8, cutover_bytes=0)
        _assert_bitwise(got, want)


# -- slab partition and thread resolution --------------------------------


def test_slab_bounds_partition():
    for m in (2, 3, 7, 100, 101):
        for parts in (1, 2, 3, 8, m, m + 5):
            bounds = _slab_bounds(m, parts)
            assert bounds[0][0] == 0 and bounds[-1][1] == m
            for (lo, hi), (lo2, _hi2) in zip(bounds, bounds[1:]):
                assert hi == lo2 and hi > lo
            widths = [hi - lo for lo, hi in bounds]
            assert max(widths) - min(widths) <= 1


def test_resolve_threads():
    assert resolve_threads(3) == 3
    assert resolve_threads(1) == 1
    assert resolve_threads(None, n_bytes=0) == 1
    auto = resolve_threads(None)
    assert auto >= 1
    assert resolve_threads("auto") == auto
    with pytest.raises(ValueError):
        resolve_threads(-1)


# -- carry continuation (the kernel protocol) ----------------------------


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("tuple_size", [1, 4])
def test_threaded_kernel_feed_matches_serial(threads, tuple_size):
    op = get_op("add")
    rng = np.random.default_rng(hash((threads, tuple_size)) % 2**32)
    values = rng.integers(-50, 50, 20 * tuple_size * threads + 5).astype(np.int64)
    serial = LaneKernel(op, values.dtype, tuple_size)
    threaded = ThreadedLaneKernel(
        op, values.dtype, tuple_size, threads=threads, cutover_bytes=0
    )
    splits = [0, 7, tuple_size * threads, len(values) // 2, len(values)]
    prev = 0
    for split in splits:
        chunk = values[prev:split]
        _assert_bitwise(
            threaded.feed(chunk.copy()), serial.feed(chunk.copy()),
            f"split at {split}",
        )
        prev = split
    _assert_bitwise(
        threaded.feed(values[prev:].copy()), serial.feed(values[prev:].copy())
    )


def test_threaded_fold_lanes_matches_serial():
    op = get_op("add")
    rng = np.random.default_rng(2)
    s = 5
    carry = rng.integers(-50, 50, s).astype(np.int64)
    for n in (0, 1, s - 1, s, 4 * s + 3, 1000 * s + 2):
        for pos in (0, 3):
            buf = rng.integers(-50, 50, n).astype(np.int64)
            want = buf.copy()
            kernels.fold_lanes(want, op, carry, pos=pos, tuple_size=s)
            got = buf.copy()
            threaded_fold_lanes(
                got, op, carry, pos=pos, tuple_size=s, threads=4,
                cutover_bytes=0,
            )
            _assert_bitwise(got, want, f"n={n} pos={pos}")


# -- the engine wrapper --------------------------------------------------


@pytest.mark.parametrize("threads", [2, 8])
def test_threaded_engine_contract(threads):
    rng = np.random.default_rng(21)
    values = rng.integers(-100, 100, 50_001).astype(np.int64)
    engine = ThreadedScan(threads=threads, cutover_bytes=0)
    for order in (1, 2):
        for inclusive in (True, False):
            result = engine.run(
                values, order=order, tuple_size=3, inclusive=inclusive
            )
            want = kernels.scan_into(
                values, np.empty_like(values), get_op("add"),
                order=order, tuple_size=3, inclusive=inclusive,
            )
            _assert_bitwise(result.values, want)
    assert result.threads == threads


def test_threaded_engine_via_api():
    from repro import api

    rng = np.random.default_rng(23)
    values = rng.integers(-100, 100, 10_000).astype(np.int32)
    _assert_bitwise(
        api.prefix_sum(values, order=2, engine="threaded"),
        api.prefix_sum(values, order=2),
    )
    assert "threaded" in api.ENGINE_NAMES


# -- non-ufunc operators stay serial (and correct) -----------------------


def test_non_ufunc_op_falls_back_serial():
    from repro.ops import AssociativeOp

    op = AssociativeOp(
        name="add2",
        fn=lambda a, b: a + b,
        identity_fn=lambda dt: dt.type(0),
    )
    assert op.ufunc is None
    rng = np.random.default_rng(3)
    values = rng.integers(-50, 50, 977).astype(np.int64)
    want = kernels.lane_scan(values, op, 3, out=np.empty_like(values))
    got = threaded_lane_scan(
        values, op, 3, threads=4, cutover_bytes=0
    )
    _assert_bitwise(got, want)
