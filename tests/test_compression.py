"""Tests for the delta-compression application."""

import numpy as np
import pytest

from conftest import small_sam
from repro.compression import (
    CodecError,
    DeltaCodec,
    choose_model,
    varint_decode,
    varint_encode,
    zigzag_decode,
    zigzag_encode,
)
from repro.compression.codec import residual_cost_bytes


class TestZigzag:
    def test_small_values_map_small(self):
        values = np.array([0, -1, 1, -2, 2], dtype=np.int32)
        assert np.array_equal(zigzag_encode(values), np.array([0, 1, 2, 3, 4], dtype=np.uint32))

    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    def test_round_trip_extremes(self, dtype):
        info = np.iinfo(dtype)
        values = np.array([info.min, info.min + 1, -1, 0, 1, info.max - 1, info.max], dtype=dtype)
        assert np.array_equal(zigzag_decode(zigzag_encode(values)), values)

    def test_round_trip_random(self, rng):
        values = rng.integers(-(2**62), 2**62, 2000).astype(np.int64)
        assert np.array_equal(zigzag_decode(zigzag_encode(values)), values)

    def test_rejects_unsigned_input(self):
        with pytest.raises(TypeError, match="int32/int64"):
            zigzag_encode(np.array([1], dtype=np.uint32))

    def test_decode_rejects_signed_input(self):
        with pytest.raises(TypeError, match="uint32/uint64"):
            zigzag_decode(np.array([1], dtype=np.int32))


class TestVarint:
    def test_single_byte_values(self):
        data = varint_encode(np.array([0, 1, 127], dtype=np.uint64))
        assert len(data) == 3

    def test_multi_byte_boundaries(self):
        values = np.array([127, 128, 16383, 16384, 2**63], dtype=np.uint64)
        data = varint_encode(values)
        assert np.array_equal(varint_decode(data, len(values)), values)

    def test_round_trip_random(self, rng):
        values = rng.integers(0, 2**63, 3000).astype(np.uint64)
        assert np.array_equal(varint_decode(varint_encode(values), 3000), values)

    def test_empty(self):
        assert varint_encode(np.array([], dtype=np.uint64)) == b""
        assert varint_decode(b"", 0).size == 0

    def test_truncated_stream(self):
        data = varint_encode(np.array([300], dtype=np.uint64))
        with pytest.raises(ValueError, match="truncated"):
            varint_decode(data[:-1], 1)

    def test_trailing_garbage(self):
        data = varint_encode(np.array([5], dtype=np.uint64))
        with pytest.raises(ValueError, match="trailing"):
            varint_decode(data + b"\x00", 1)

    def test_overlong_varint_rejected(self):
        with pytest.raises(ValueError, match="longer than 64 bits"):
            varint_decode(b"\x80" * 10 + b"\x01", 1)

    def test_rejects_signed(self):
        with pytest.raises(TypeError, match="unsigned"):
            varint_encode(np.array([1], dtype=np.int64))

    def test_known_encoding(self):
        # 300 = 0b10.0101100 -> LEB128: 0xAC 0x02
        assert varint_encode(np.array([300], dtype=np.uint64)) == b"\xac\x02"


class TestModelSelection:
    def test_linear_ramp_prefers_order2(self):
        # Slope large enough that first differences need two varint
        # bytes while second differences (all zero) need one.
        values = (np.arange(5000) * 100).astype(np.int64)
        order, _ = choose_model(values)
        assert order == 2

    def test_gentle_ramp_ties_resolve_to_lowest_order(self):
        # A slope of 3 zigzags into one varint byte at every order, so
        # the cheapest (lowest) order wins the tie.
        values = (np.arange(4000) * 3).astype(np.int64)
        order, _ = choose_model(values)
        assert order == 1

    def test_random_walk_prefers_order1(self, rng):
        values = np.cumsum(rng.integers(-5, 6, 5000)).astype(np.int64)
        order, _ = choose_model(values)
        assert order == 1

    def test_cost_matches_actual_payload(self, rng):
        values = rng.integers(-100, 100, 1000).astype(np.int32)
        cost = residual_cost_bytes(values, 1, 1)
        blob = DeltaCodec().compress(values, order=1)
        header = 24  # v2 header: 16-byte v1 layout + payload CRC + pad
        assert blob.nbytes - header == cost

    def test_tuple_aware_model_wins_on_interleaved_data(self, rng):
        xy = np.empty(8000, dtype=np.int64)
        xy[0::2] = np.cumsum(rng.integers(-2, 3, 4000))
        xy[1::2] = 10**6 + np.cumsum(rng.integers(-2, 3, 4000))
        assert residual_cost_bytes(xy, 1, 2) < residual_cost_bytes(xy, 1, 1)


class TestCodec:
    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    @pytest.mark.parametrize("order", [1, 2, 3])
    @pytest.mark.parametrize("tuple_size", [1, 2, 4])
    def test_round_trip(self, rng, dtype, order, tuple_size):
        values = rng.integers(-10000, 10000, 3000).astype(dtype)
        codec = DeltaCodec()
        blob = codec.compress(values, order=order, tuple_size=tuple_size)
        assert np.array_equal(codec.decompress(blob), values)

    def test_round_trip_from_raw_bytes(self, rng):
        values = rng.integers(-100, 100, 500).astype(np.int32)
        codec = DeltaCodec()
        data = codec.compress(values).data
        assert np.array_equal(codec.decompress(data), values)

    def test_smooth_data_compresses(self, rng):
        t = np.arange(20000)
        smooth = (1000 * np.sin(t / 200.0) + rng.normal(0, 1, len(t))).astype(np.int32)
        blob = DeltaCodec().compress(smooth)
        assert blob.ratio() > 2.5

    def test_auto_order_selection(self):
        ramp = (np.arange(4000) * 100).astype(np.int32)
        blob = DeltaCodec().compress(ramp)
        assert blob.order == 2

    def test_sam_engine_decode_matches_host(self, rng):
        values = rng.integers(-1000, 1000, 4000).astype(np.int32)
        blob = DeltaCodec().compress(values, order=2, tuple_size=2)
        host = DeltaCodec().decompress(blob)
        sam = DeltaCodec(decode_engine=small_sam()).decompress(blob)
        assert np.array_equal(host, sam)
        assert np.array_equal(host, values)

    def test_empty_array(self):
        codec = DeltaCodec()
        blob = codec.compress(np.array([], dtype=np.int32))
        assert np.array_equal(codec.decompress(blob), np.array([], dtype=np.int32))

    def test_header_inspection(self, rng):
        values = rng.integers(-5, 5, 100).astype(np.int64)
        codec = DeltaCodec()
        blob = codec.compress(values, order=3, tuple_size=2)
        parsed = codec.parse_header(blob.data)
        assert parsed.order == 3
        assert parsed.tuple_size == 2
        assert parsed.dtype == np.int64
        assert parsed.count == 100


class TestCodecErrors:
    def test_rejects_2d(self):
        with pytest.raises(CodecError, match="1-D"):
            DeltaCodec().compress(np.zeros((2, 2), dtype=np.int32))

    def test_rejects_float(self):
        with pytest.raises(CodecError, match="unsupported dtype"):
            DeltaCodec().compress(np.zeros(4, dtype=np.float32))

    def test_rejects_bad_magic(self):
        with pytest.raises(CodecError, match="bad magic"):
            DeltaCodec().decompress(b"NOPE" + b"\x00" * 12)

    def test_rejects_short_buffer(self):
        with pytest.raises(CodecError, match="shorter"):
            DeltaCodec().decompress(b"SA")

    def test_rejects_bad_version(self, rng):
        blob = DeltaCodec().compress(np.zeros(4, dtype=np.int32))
        corrupted = blob.data[:4] + b"\x63" + blob.data[5:]
        with pytest.raises(CodecError, match="version"):
            DeltaCodec().decompress(corrupted)

    def test_rejects_truncated_payload(self, rng):
        values = rng.integers(-1000, 1000, 100).astype(np.int32)
        blob = DeltaCodec().compress(values)
        with pytest.raises(ValueError, match="truncated|trailing"):
            DeltaCodec().decompress(blob.data[:-2])

    def test_rejects_huge_order(self):
        with pytest.raises(CodecError, match="order"):
            DeltaCodec().compress(np.zeros(4, dtype=np.int32), order=300)
