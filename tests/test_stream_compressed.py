"""Compressed streaming: fused decode→scan→encode through the stream
layer.

Covers the acceptance criteria end to end: a blocked ``.samb``
container scans bit-identically to the same values fed raw — through
the single-session driver, the sharded driver, injected-crash resume,
and a real SIGKILL of the CLI process — plus the planner's
compressed-file workload source, the CLI surface, the counters, and
the calibration store's concurrent-writer merge.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.__main__ import main
from repro.api import scan_file as api_scan_file
from repro.compression import BlockedDeltaCodec
from repro.compression.stream import BlockedFileReader, read_index
from repro.core.host import host_prefix_sum
from repro.plan import plan_file_scan
from repro.plan.calibration import CalibrationStore
from repro.stream import (
    CheckpointMismatchError,
    InjectedFailureError,
    scan_file,
    scan_file_sharded,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def make_values(rng, n, dtype=np.int64):
    return np.cumsum(rng.integers(-50, 51, n)).astype(dtype)


def write_blocked(tmp_path, values, block_elements=512, name="in.samb",
                  tuple_size=1):
    blob = BlockedDeltaCodec(block_elements=block_elements).compress(
        values, tuple_size=tuple_size
    )
    path = tmp_path / name
    path.write_bytes(blob.data)
    return path


class TestBlockedInput:
    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    @pytest.mark.parametrize("order,tuple_size", [(1, 1), (2, 3)])
    def test_matches_raw_scan(self, tmp_path, rng, dtype, order, tuple_size):
        values = make_values(rng, 10_007, dtype)
        samb = write_blocked(tmp_path, values, block_elements=777)
        out = tmp_path / "out.bin"
        result = scan_file(
            samb, out, order=order, tuple_size=tuple_size,
            chunk_bytes=4096,
        )
        expected = host_prefix_sum(
            values, order=order, tuple_size=tuple_size
        )
        assert np.array_equal(np.fromfile(out, dtype=dtype), expected)
        # Container header is authoritative: the dtype default (int32)
        # was overridden by the container's own dtype.
        assert result.dtype == np.dtype(dtype).name

    def test_counters_account_compressed_bytes(self, tmp_path, rng):
        values = make_values(rng, 20_000)
        samb = write_blocked(tmp_path, values)
        result = scan_file(samb, tmp_path / "out.bin", chunk_bytes=8192)
        c = result.counters
        assert 0 < c.compressed_bytes_in < values.nbytes
        assert c.decoded_bytes_in == values.nbytes
        assert c.compression_ratio_in() > 1.0
        assert c.seconds_decode >= 0.0

    def test_sub_block_chunks_decode_each_block_once(self, tmp_path, rng):
        # chunk budget far below block_elements: the reader's one-block
        # cache must keep compressed IO at one pass over the container
        # instead of re-decoding the covering block for every chunk.
        values = make_values(rng, 32_768)
        samb = write_blocked(tmp_path, values, block_elements=8192)
        result = scan_file(samb, tmp_path / "out.bin", chunk_bytes=2048)
        c = result.counters
        assert c.chunks > 32_768 * 8 // 2048 // 2
        assert c.compressed_bytes_in < samb.stat().st_size
        expected = host_prefix_sum(values)
        assert np.array_equal(
            np.fromfile(tmp_path / "out.bin", dtype=np.int64), expected
        )

    def test_explicit_format_and_sniffing_agree(self, tmp_path, rng):
        values = make_values(rng, 3000)
        samb = write_blocked(tmp_path, values)
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        scan_file(samb, a, input_format="blocked")
        scan_file(samb, b)  # auto-sniffed from the SAMB magic
        assert a.read_bytes() == b.read_bytes()

    def test_empty_container(self, tmp_path, rng):
        samb = write_blocked(tmp_path, np.array([], dtype=np.int64))
        out = tmp_path / "out.bin"
        result = scan_file(samb, out)
        assert result.elements == 0
        assert out.stat().st_size == 0


class TestBlockedOutput:
    def test_raw_to_blocked_round_trips(self, tmp_path, rng):
        values = make_values(rng, 9_001)
        raw = tmp_path / "in.bin"
        values.tofile(raw)
        out = tmp_path / "out.samb"
        result = scan_file(
            raw, out, dtype=np.int64, order=2, chunk_bytes=16384,
            output_format="blocked", output_block_elements=1024,
        )
        assert result.counters.compressed_bytes_out > 0
        index = read_index(out)
        assert index.block_elements == 1024
        with BlockedFileReader(out) as reader:
            got = np.array(reader.read_range(0, reader.count), copy=True)
        assert np.array_equal(got, host_prefix_sum(values, order=2))

    def test_blocked_to_blocked(self, tmp_path, rng):
        values = make_values(rng, 6_000)
        samb = write_blocked(tmp_path, values, block_elements=999)
        out = tmp_path / "out.samb"
        result = scan_file(samb, out, output_format="blocked")
        c = result.counters
        assert c.compressed_bytes_in > 0 and c.compressed_bytes_out > 0
        with BlockedFileReader(out) as reader:
            got = np.array(reader.read_range(0, reader.count), copy=True)
        assert np.array_equal(got, host_prefix_sum(values))

    def test_blocked_output_is_single_session_only(self, tmp_path, rng):
        values = make_values(rng, 5_000)
        raw = tmp_path / "in.bin"
        values.tofile(raw)
        with pytest.raises(ValueError, match="single-session"):
            api_scan_file(
                raw, tmp_path / "out.samb", dtype=np.int64,
                shards=4, output_format="blocked",
            )


class TestCrashResume:
    def test_blocked_input_resumes_bit_identically(self, tmp_path, rng):
        values = make_values(rng, 30_000)
        samb = write_blocked(tmp_path, values, block_elements=600)
        out, ckpt = tmp_path / "out.bin", tmp_path / "job.ckpt"
        with pytest.raises(InjectedFailureError):
            scan_file(
                samb, out, order=2, chunk_bytes=8192, checkpoint=ckpt,
                checkpoint_every=1, fail_after_chunks=2,
            )
        assert ckpt.exists()
        result = scan_file(
            samb, out, order=2, chunk_bytes=8192, checkpoint=ckpt,
            checkpoint_every=1, resume=True,
        )
        assert result.resumed_from
        assert not ckpt.exists()
        assert np.array_equal(
            np.fromfile(out, dtype=np.int64),
            host_prefix_sum(values, order=2),
        )

    def test_blocked_output_resumes_bit_identically(self, tmp_path, rng):
        values = make_values(rng, 25_000)
        raw = tmp_path / "in.bin"
        values.tofile(raw)
        reference = tmp_path / "ref.samb"
        scan_file(
            raw, reference, dtype=np.int64, chunk_bytes=8192,
            output_format="blocked", output_block_elements=512,
        )
        out, ckpt = tmp_path / "out.samb", tmp_path / "job.ckpt"
        with pytest.raises(InjectedFailureError):
            scan_file(
                raw, out, dtype=np.int64, chunk_bytes=8192,
                output_format="blocked", output_block_elements=512,
                checkpoint=ckpt, checkpoint_every=1, fail_after_chunks=2,
            )
        scan_file(
            raw, out, dtype=np.int64, chunk_bytes=8192,
            output_format="blocked", output_block_elements=512,
            checkpoint=ckpt, checkpoint_every=1, resume=True,
        )
        # Deterministic per-block encode: the resumed container is
        # byte-for-byte the uninterrupted one, not merely equivalent.
        assert out.read_bytes() == reference.read_bytes()

    def test_format_mismatch_on_resume_is_rejected(self, tmp_path, rng):
        values = make_values(rng, 30_000)
        raw = tmp_path / "in.bin"
        values.tofile(raw)
        samb = write_blocked(tmp_path, values, block_elements=600)
        out, ckpt = tmp_path / "out.bin", tmp_path / "job.ckpt"
        with pytest.raises(InjectedFailureError):
            scan_file(
                samb, out, chunk_bytes=8192, checkpoint=ckpt,
                checkpoint_every=1, fail_after_chunks=2,
            )
        with pytest.raises(CheckpointMismatchError, match="blocked"):
            scan_file(
                raw, out, dtype=np.int64, chunk_bytes=8192,
                checkpoint=ckpt, checkpoint_every=1, resume=True,
            )


class TestShardedBlockedInput:
    def test_matches_raw_sharded(self, tmp_path, rng):
        values = make_values(rng, 50_000)
        raw = tmp_path / "in.bin"
        values.tofile(raw)
        samb = write_blocked(tmp_path, values, block_elements=999)
        raw_out, samb_out = tmp_path / "raw.bin", tmp_path / "blk.bin"
        scan_file_sharded(
            raw, raw_out, dtype=np.int64, order=2, shards=4,
            chunk_bytes=8192,
        )
        result = scan_file_sharded(
            samb, samb_out, order=2, shards=4, chunk_bytes=8192
        )
        assert result.input_format == "blocked"
        assert result.counters.compressed_bytes_in > 0
        # Only pass 1 decodes the container; the raw ping-pong passes
        # must not inflate the reported compression ratio.
        assert result.counters.decoded_bytes_in == values.nbytes
        assert result.counters.compression_ratio_in() == pytest.approx(
            values.nbytes / result.counters.compressed_bytes_in
        )
        assert raw_out.read_bytes() == samb_out.read_bytes()

    def test_shards_align_to_container_blocks(self, tmp_path, rng):
        values = make_values(rng, 10_000)
        samb = write_blocked(tmp_path, values, block_elements=768)
        result = scan_file_sharded(
            samb, tmp_path / "out.bin", shards=3, chunk_bytes=4096
        )
        for lo, hi in result.shards[:-1]:
            assert lo % 768 == 0 and hi % 768 == 0

    def test_crash_and_resume(self, tmp_path, rng):
        values = make_values(rng, 40_000)
        samb = write_blocked(tmp_path, values, block_elements=512)
        out, manifest = tmp_path / "out.bin", tmp_path / "job.manifest"
        with pytest.raises(InjectedFailureError):
            scan_file_sharded(
                samb, out, order=2, shards=5, workers=1,
                chunk_bytes=4096, checkpoint=manifest,
                fail_after_shards=2,
            )
        assert manifest.exists()
        result = scan_file_sharded(
            samb, out, order=2, shards=5, workers=1, chunk_bytes=4096,
            checkpoint=manifest, resume=True,
        )
        assert result.resumed_shards >= 2
        assert not manifest.exists()
        assert np.array_equal(
            np.fromfile(out, dtype=np.int64),
            host_prefix_sum(values, order=2),
        )

    def test_manifest_format_mismatch_rejected(self, tmp_path, rng):
        values = make_values(rng, 40_000)
        raw = tmp_path / "in.bin"
        values.tofile(raw)
        samb = write_blocked(tmp_path, values, block_elements=512)
        out, manifest = tmp_path / "out.bin", tmp_path / "job.manifest"
        with pytest.raises(InjectedFailureError):
            scan_file_sharded(
                samb, out, shards=5, workers=1, chunk_bytes=4096,
                checkpoint=manifest, fail_after_shards=1,
            )
        with pytest.raises(CheckpointMismatchError, match="blocked"):
            scan_file_sharded(
                raw, out, dtype=np.int64, shards=5, workers=1,
                chunk_bytes=4096, checkpoint=manifest, resume=True,
            )


class TestPlannerIntegration:
    def test_blocked_input_plans_as_compressed_workload(self, tmp_path, rng):
        values = make_values(rng, 8_000)
        samb = write_blocked(tmp_path, values)
        plan = plan_file_scan(samb, dtype="int32")
        assert plan.workload.source == "compressed-file"
        assert plan.workload.dtype == np.dtype(np.int64)
        assert 0 < plan.workload.compressed_nbytes < plan.workload.nbytes
        # Block decode is serial: the slab-threaded single-session
        # candidate must not be offered for compressed inputs.
        assert all(
            c.strategy != "stream_threaded" for c in plan.candidates
        )

    def test_planned_api_scan_over_blocked_input(self, tmp_path, rng,
                                                 monkeypatch):
        monkeypatch.setenv(
            "REPRO_PLAN_CACHE", str(tmp_path / "cal.json")
        )
        values = make_values(rng, 12_000)
        samb = write_blocked(tmp_path, values)
        out = tmp_path / "out.bin"
        result = api_scan_file(samb, out, order=2)
        assert result.elements == len(values)
        assert np.array_equal(
            np.fromfile(out, dtype=np.int64),
            host_prefix_sum(values, order=2),
        )


class TestCompressedCLI:
    def test_blocked_compress_decompress_round_trip(self, tmp_path, rng):
        values = make_values(rng, 15_000)
        raw, samb, back = (
            tmp_path / "in.bin", tmp_path / "c.samb", tmp_path / "back.bin"
        )
        values.tofile(raw)
        assert main([
            "compress", str(raw), str(samb), "--blocked",
            "--dtype", "int64", "--block-elements", "2048",
        ]) == 0
        assert read_index(samb).block_elements == 2048
        assert main(["decompress", str(samb), str(back)]) == 0
        assert raw.read_bytes() == back.read_bytes()

    def test_stream_sniffs_blocked_input(self, tmp_path, rng, monkeypatch):
        monkeypatch.setenv(
            "REPRO_PLAN_CACHE", str(tmp_path / "cal.json")
        )
        values = make_values(rng, 10_000)
        samb = write_blocked(tmp_path, values)
        ref, out = tmp_path / "ref.bin", tmp_path / "out.bin"
        host_prefix_sum(values).tofile(ref)
        assert main(["stream", str(samb), str(out)]) == 0
        assert ref.read_bytes() == out.read_bytes()
        sharded_out = tmp_path / "sharded.bin"
        assert main([
            "stream", str(samb), str(sharded_out), "--shards", "3",
        ]) == 0
        assert ref.read_bytes() == sharded_out.read_bytes()

    def test_blocked_output_flag(self, tmp_path, rng):
        values = make_values(rng, 8_000)
        raw = tmp_path / "in.bin"
        values.tofile(raw)
        out = tmp_path / "out.samb"
        assert main([
            "stream", str(raw), str(out), "--dtype", "int64",
            "--engine", "host", "--output-format", "blocked",
        ]) == 0
        with BlockedFileReader(out) as reader:
            got = np.array(reader.read_range(0, reader.count), copy=True)
        assert np.array_equal(got, host_prefix_sum(values))

    def test_blocked_output_with_shards_exits_2(self, tmp_path, rng):
        values = make_values(rng, 8_000)
        raw = tmp_path / "in.bin"
        values.tofile(raw)
        assert main([
            "stream", str(raw), str(tmp_path / "out.samb"),
            "--dtype", "int64", "--shards", "4",
            "--output-format", "blocked",
        ]) == 2


class TestResumeAfterKill:
    """A *real* kill: SIGKILL the CLI mid-scan of a blocked container,
    then resume — the completed output must be bit-identical."""

    def test_sigkill_then_resume(self, tmp_path, rng):
        values = make_values(rng, 1 << 19)
        samb = write_blocked(tmp_path, values, block_elements=4096)
        out, ckpt = tmp_path / "out.bin", tmp_path / "job.ckpt"
        args = [
            str(samb), str(out), "--order", "2",
            "--chunk-bytes", "16384", "--checkpoint", str(ckpt),
            "--checkpoint-every", "2",
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src")
            + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "stream", *args],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while (
                not ckpt.exists()
                and proc.poll() is None
                and time.monotonic() < deadline
            ):
                time.sleep(0.002)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait()

        # If the job finished before the kill landed, the checkpoint is
        # gone and --resume redoes the scan; bit-identity still holds.
        assert main(["stream", *args, "--resume"]) == 0
        assert np.array_equal(
            np.fromfile(out, dtype=np.int64),
            host_prefix_sum(values, order=2),
        )


class TestCalibrationConcurrentWriters:
    """Satellite regression: persists merge across store instances
    instead of the last writer erasing everyone else's buckets."""

    def test_two_stores_compose(self, tmp_path):
        path = str(tmp_path / "cal.json")
        a, b = CalibrationStore(path), CalibrationStore(path)
        # Both stores load (empty) before either persists — the classic
        # read-modify-write race.
        assert a.throughput("bucket-a") is None
        assert b.throughput("bucket-b") is None
        a.observe("bucket-a", 1e9)
        b.observe("bucket-b", 2e9)
        fresh = CalibrationStore(path)
        assert fresh.throughput("bucket-a") == pytest.approx(1e9)
        assert fresh.throughput("bucket-b") == pytest.approx(2e9)

    def test_better_warmed_bucket_survives(self, tmp_path):
        path = str(tmp_path / "cal.json")
        a = CalibrationStore(path)
        # Values that keep moving so every observation actually writes
        # (a converged EWMA skips the disk write by design).
        for rate in (1e9, 2e9, 1e9, 2e9, 1e9):
            a.observe("bucket", rate)
        b = CalibrationStore(path)
        # b has never read the file; its single sample must not clobber
        # a's five-sample EWMA.
        b._entries = {"bucket": {"bytes_per_second": 7e9, "samples": 1}}
        b._persist()
        fresh = CalibrationStore(path)
        assert fresh.samples("bucket") == 5
        assert fresh.throughput("bucket") == pytest.approx(
            a.throughput("bucket")
        )
