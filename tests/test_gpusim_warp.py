"""Unit tests for warp shuffles and warp-level scans."""

import numpy as np
import pytest

from repro.gpusim.warp import WARP_SIZE, Warp
from repro.ops import ADD, MAX, MUL, XOR
from repro.reference import inclusive_scan_serial


@pytest.fixture
def warp():
    return Warp(0)


class TestShuffles:
    def test_shfl_up_shifts(self, warp):
        values = np.arange(WARP_SIZE, dtype=np.int32)
        out = warp.shfl_up(values, 1)
        assert out[0] == 0  # lane 0 keeps its own value
        assert np.array_equal(out[1:], values[:-1])

    def test_shfl_up_zero_delta_is_copy(self, warp):
        values = np.arange(WARP_SIZE, dtype=np.int32)
        out = warp.shfl_up(values, 0)
        assert np.array_equal(out, values)
        assert out is not values

    def test_shfl_up_low_lanes_keep_value(self, warp):
        values = np.arange(WARP_SIZE, dtype=np.int32)
        out = warp.shfl_up(values, 4)
        assert np.array_equal(out[:4], values[:4])

    def test_shfl_down(self, warp):
        values = np.arange(WARP_SIZE, dtype=np.int32)
        out = warp.shfl_down(values, 2)
        assert np.array_equal(out[:-2], values[2:])
        assert np.array_equal(out[-2:], values[-2:])

    def test_shfl_idx_broadcasts(self, warp):
        values = np.arange(WARP_SIZE, dtype=np.int32)
        out = warp.shfl_idx(values, 13)
        assert np.all(out == 13)

    def test_invalid_delta(self, warp):
        values = np.zeros(WARP_SIZE, dtype=np.int32)
        with pytest.raises(ValueError, match="delta"):
            warp.shfl_up(values, WARP_SIZE)
        with pytest.raises(ValueError, match="delta"):
            warp.shfl_down(values, -1)

    def test_wrong_width_rejected(self, warp):
        with pytest.raises(ValueError, match="lane values"):
            warp.shfl_up(np.zeros(16, dtype=np.int32), 1)

    def test_shuffles_are_counted(self, warp):
        values = np.zeros(WARP_SIZE, dtype=np.int32)
        warp.shfl_up(values, 1)
        warp.shfl_idx(values, 0)
        assert warp.stats.shuffles == 2


class TestWarpScan:
    @pytest.mark.parametrize("op", [ADD, MAX, XOR, MUL], ids=lambda op: op.name)
    def test_inclusive_scan_matches_serial(self, warp, rng, op):
        values = rng.integers(1, 5, WARP_SIZE).astype(np.int64)
        expected = inclusive_scan_serial(values, op=op)
        assert np.array_equal(warp.inclusive_scan(values, op), expected)

    def test_scan_uses_log_steps_of_shuffles(self, warp):
        values = np.ones(WARP_SIZE, dtype=np.int32)
        warp.inclusive_scan(values, ADD)
        assert warp.stats.shuffles == 5  # log2(32)

    def test_exclusive_scan(self, warp):
        values = np.ones(WARP_SIZE, dtype=np.int32)
        out = warp.exclusive_scan(values, ADD)
        assert np.array_equal(out, np.arange(WARP_SIZE, dtype=np.int32))

    def test_exclusive_scan_max_identity(self, warp):
        values = np.full(WARP_SIZE, 5, dtype=np.int32)
        out = warp.exclusive_scan(values, MAX)
        assert out[0] == np.iinfo(np.int32).min
        assert np.all(out[1:] == 5)

    def test_reduce_broadcasts_total(self, warp, rng):
        values = rng.integers(-100, 100, WARP_SIZE).astype(np.int32)
        out = warp.reduce(values, ADD)
        with np.errstate(over="ignore"):
            expected = np.int32(values.astype(np.int64).sum() & 0xFFFFFFFF)
        assert np.all(out == np.int32(expected))

    def test_scan_wraps_int32(self, warp):
        values = np.full(WARP_SIZE, 2**27, dtype=np.int32)
        out = warp.inclusive_scan(values, ADD)
        assert out.dtype == np.int32
        # 32 * 2^27 = 2^32 -> wraps to 0
        assert out[-1] == 0
