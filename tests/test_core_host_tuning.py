"""Tests for the fast host engine and the auto-tuner."""

import numpy as np
import pytest

from conftest import BOUNDARY_SIZES, make_int_array
from repro.core.host import (
    host_delta_decode,
    host_delta_encode,
    host_prefix_sum,
    host_scan,
)
from repro.core.tuning import (
    DEFAULT_CANDIDATES,
    AutoTuner,
    tune_items_per_thread,
    wall_clock_cost,
)
from repro.gpusim.spec import K40, TITAN_X
from repro.reference import (
    delta_encode_serial,
    exclusive_scan_serial,
    inclusive_scan_serial,
    prefix_sum_serial,
)


class TestHostScan:
    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_matches_reference(self, rng, n):
        values = make_int_array(rng, n)
        assert np.array_equal(host_scan(values), inclusive_scan_serial(values))

    @pytest.mark.parametrize("op", ["add", "max", "min", "xor"])
    @pytest.mark.parametrize("tuple_size", [1, 2, 3, 5])
    def test_ops_and_tuples(self, rng, op, tuple_size):
        values = make_int_array(rng, 997)
        expected = inclusive_scan_serial(values, op=op, tuple_size=tuple_size)
        assert np.array_equal(
            host_scan(values, op=op, tuple_size=tuple_size), expected
        )

    def test_exclusive(self, rng):
        values = make_int_array(rng, 500)
        assert np.array_equal(
            host_scan(values, inclusive=False), exclusive_scan_serial(values)
        )

    def test_exclusive_tuple(self, rng):
        values = make_int_array(rng, 501)
        assert np.array_equal(
            host_scan(values, tuple_size=3, inclusive=False),
            exclusive_scan_serial(values, tuple_size=3),
        )

    def test_empty(self):
        out = host_scan(np.array([], dtype=np.int32))
        assert out.size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            host_scan(np.zeros((2, 3), dtype=np.int32))


class TestHostPrefixSum:
    @pytest.mark.parametrize("order", [1, 2, 3, 6])
    @pytest.mark.parametrize("tuple_size", [1, 2, 4])
    def test_matches_reference(self, rng, order, tuple_size):
        values = make_int_array(rng, 800, dtype=np.int64)
        expected = prefix_sum_serial(values, order=order, tuple_size=tuple_size)
        got = host_prefix_sum(values, order=order, tuple_size=tuple_size)
        assert np.array_equal(got, expected)

    def test_exclusive_higher_order(self, rng):
        values = make_int_array(rng, 300)
        expected = prefix_sum_serial(values, order=3, inclusive=False)
        got = host_prefix_sum(values, order=3, inclusive=False)
        assert np.array_equal(got, expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            host_prefix_sum(np.zeros(4, dtype=np.int32), order=0)


class TestHostDelta:
    @pytest.mark.parametrize("order", [1, 2, 4])
    @pytest.mark.parametrize("tuple_size", [1, 3])
    def test_encode_matches_reference(self, rng, order, tuple_size):
        values = make_int_array(rng, 600)
        assert np.array_equal(
            host_delta_encode(values, order=order, tuple_size=tuple_size),
            delta_encode_serial(values, order=order, tuple_size=tuple_size),
        )

    def test_round_trip(self, rng):
        values = make_int_array(rng, 1000, dtype=np.int64)
        deltas = host_delta_encode(values, order=3, tuple_size=2)
        assert np.array_equal(
            host_delta_decode(deltas, order=3, tuple_size=2), values
        )

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError, match="numeric"):
            host_delta_encode(np.array(["a", "b"]))


class TestTuningHeuristic:
    def test_small_problems_get_one_item(self):
        assert tune_items_per_thread(1000, TITAN_X) == 1

    def test_large_problems_get_more(self):
        large = tune_items_per_thread(2**28, TITAN_X)
        small = tune_items_per_thread(2**16, TITAN_X)
        assert large > small
        assert large in DEFAULT_CANDIDATES

    def test_monotone_in_n(self):
        previous = 0
        for e in range(10, 30):
            v = tune_items_per_thread(2**e, K40)
            assert v >= previous
            previous = v

    def test_capped_by_registers(self):
        assert tune_items_per_thread(2**30, TITAN_X) <= TITAN_X.registers_per_thread // 2

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            tune_items_per_thread(-1, TITAN_X)


class TestAutoTuner:
    def test_tunes_to_synthetic_optimum(self):
        # Cost has a known optimum at v=4 for large n, v=1 for small.
        def cost(n, v):
            if n < 1000:
                return abs(v - 1) + 0.01
            return abs(v - 4) + 0.01

        tuner = AutoTuner(cost, candidates=(1, 2, 4, 8))
        table = tuner.tune([100, 10_000])
        assert table == {100: 1, 10_000: 4}
        assert tuner.lookup(50) == 1
        assert tuner.lookup(100) == 1
        assert tuner.lookup(5000) == 4
        assert tuner.lookup(10**9) == 4  # beyond table: largest entry

    def test_lookup_before_tune_raises(self):
        tuner = AutoTuner(lambda n, v: 1.0)
        with pytest.raises(RuntimeError, match="before tune"):
            tuner.lookup(10)

    def test_validation(self):
        with pytest.raises(ValueError, match="candidate"):
            AutoTuner(lambda n, v: 1.0, candidates=())
        with pytest.raises(ValueError, match="repeats"):
            AutoTuner(lambda n, v: 1.0, repeats=0)

    def test_repeats_take_minimum(self):
        calls = []

        def noisy_cost(n, v):
            calls.append((n, v))
            return 10.0 if len(calls) % 2 else 1.0

        tuner = AutoTuner(noisy_cost, candidates=(1, 2), repeats=4)
        tuner.tune([64])
        assert len(calls) == 8

    def test_wall_clock_cost_positive(self):
        assert wall_clock_cost(lambda: sum(range(1000))) > 0
