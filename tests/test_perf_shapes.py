"""Every quantitative claim the paper's text makes about its figures,
checked against the performance model (the 'shape' reproduction)."""

import pytest

from repro.harness import HEADLINE_CHECKS
from repro.perf import PerformanceModel


@pytest.fixture(scope="module")
def model():
    return PerformanceModel()


@pytest.mark.parametrize(
    "check", HEADLINE_CHECKS, ids=[check.check_id for check in HEADLINE_CHECKS]
)
def test_headline_claim(model, check):
    passed, measured = check.evaluate(model)
    assert passed, (
        f"[{check.figure}] paper: {check.paper_claim!r}; model: {measured}"
    )


def test_check_ids_unique():
    ids = [check.check_id for check in HEADLINE_CHECKS]
    assert len(ids) == len(set(ids))


def test_every_figure_has_checks():
    figures = {check.figure for check in HEADLINE_CHECKS}
    for fig in [f"fig{i:02d}" for i in range(3, 17)] + ["table1"]:
        assert fig in figures, f"no headline check covers {fig}"
