"""BatchedLaneKernel: coalesced multi-stream dispatch, bit-exact.

The batched kernel must be invisible: feeding B streams through one
``stage_scan``/``feed_many`` dispatch has to leave every output, carry
and position bit-identical to B independent ``LaneKernel.feed`` calls.
These tests sweep op/dtype/tuple-size over ragged chunk mixes
(including empty chunks and freshly-primed kernels) and pin down the
eligibility rule and the occupancy counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_int_array
from repro.kernels import BatchedLaneKernel, LaneKernel, batchable_op_dtype
from repro.ops import get_op

GRID = [
    ("add", np.int64, 1),
    ("add", np.int32, 4),
    ("max", np.int64, 3),
    ("min", np.int32, 2),
    ("xor", np.uint64, 2),
    ("mul", np.int32, 1),
]


def _sequential(op_name, dtype, s, streams):
    op = get_op(op_name)
    kernels = [LaneKernel(op, dtype, s) for _ in streams]
    outs = []
    for kernel, chunks in zip(kernels, streams):
        # feed() scans integer chunks in place — copy so the shared
        # stream arrays survive for the batched run.
        outs.append([kernel.feed(c.copy()) for c in chunks])
    return kernels, outs


def _batched(op_name, dtype, s, streams):
    op = get_op(op_name)
    kernels = [LaneKernel(op, dtype, s) for _ in streams]
    batched = BatchedLaneKernel(op, dtype, s)
    outs = [[] for _ in streams]
    rounds = max(len(chunks) for chunks in streams)
    for r in range(rounds):
        live = [i for i, chunks in enumerate(streams) if r < len(chunks)]
        produced = batched.feed_many(
            [kernels[i] for i in live], [streams[i][r].copy() for i in live]
        )
        for i, out in zip(live, produced):
            outs[i].append(out)
    return kernels, outs, batched


@pytest.mark.parametrize("op_name,dtype,s", GRID)
def test_feed_many_matches_sequential_feeds(rng, op_name, dtype, s):
    lo, hi = (0, 100) if np.dtype(dtype).kind == "u" else (-50, 50)
    streams = []
    for i in range(5):
        lengths = rng.integers(0, 30, size=4) * s
        streams.append(
            [make_int_array(rng, n, dtype=dtype, lo=lo, hi=hi) for n in lengths]
        )
    seq_kernels, seq_outs = _sequential(op_name, dtype, s, streams)
    bat_kernels, bat_outs, _ = _batched(op_name, dtype, s, streams)
    for i in range(len(streams)):
        assert seq_kernels[i].pos == bat_kernels[i].pos
        np.testing.assert_array_equal(seq_kernels[i].carry, bat_kernels[i].carry)
        np.testing.assert_array_equal(seq_kernels[i].active, bat_kernels[i].active)
        for a, b in zip(seq_outs[i], bat_outs[i]):
            np.testing.assert_array_equal(a, b)
            assert a.dtype == b.dtype


def test_ragged_batch_with_empty_and_fresh_streams(rng):
    op = get_op("add")
    dtype = np.dtype(np.int64)
    kernels = [LaneKernel(op, dtype, 2) for _ in range(3)]
    kernels[0].feed(make_int_array(rng, 10, dtype=np.int64))  # mid-stream
    batched = BatchedLaneKernel(op, dtype, 2)
    chunks = [
        make_int_array(rng, 8, dtype=np.int64),
        np.array([], dtype=np.int64),  # empty: no-op but valid
        make_int_array(rng, 2, dtype=np.int64),  # fresh stream
    ]
    # sequential oracle sharing the same pre-state
    oracle = [LaneKernel(op, dtype, 2) for _ in range(3)]
    oracle[0].carry = kernels[0].carry.copy()
    oracle[0].active = kernels[0].active.copy()
    oracle[0].pos = kernels[0].pos
    expected = [k.feed(c.copy()) for k, c in zip(oracle, chunks)]

    produced = batched.feed_many(kernels, chunks)
    for got, want, k, ok in zip(produced, expected, kernels, oracle):
        np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(k.carry, ok.carry)
        assert k.pos == ok.pos


def test_occupancy_counters(rng):
    op = get_op("add")
    dtype = np.dtype(np.int64)
    batched = BatchedLaneKernel(op, dtype, 1)
    kernels = [LaneKernel(op, dtype, 1) for _ in range(4)]
    batched.feed_many(kernels, [make_int_array(rng, 16, dtype=np.int64)] * 4)
    batched.feed_many(kernels[:2], [make_int_array(rng, 16, dtype=np.int64)] * 2)
    assert batched.dispatches == 2
    assert batched.streams_fed == 6
    assert batched.occupancy() == pytest.approx(3.0)


def test_batchable_op_dtype_gates():
    assert batchable_op_dtype(get_op("add"), np.dtype(np.int64))
    assert batchable_op_dtype(get_op("xor"), np.dtype(np.uint32))
    assert not batchable_op_dtype(get_op("add"), np.dtype(np.float64))


def test_feed_many_rejects_mismatched_kernels(rng):
    op = get_op("add")
    dtype = np.dtype(np.int64)
    batched = BatchedLaneKernel(op, dtype, 2)
    wrong_s = LaneKernel(op, dtype, 3)
    with pytest.raises(ValueError):
        batched.feed_many([wrong_s], [make_int_array(rng, 3, dtype=np.int64)])
    wrong_dtype = LaneKernel(op, np.dtype(np.int32), 2)
    with pytest.raises(ValueError):
        batched.feed_many([wrong_dtype], [make_int_array(rng, 2, dtype=np.int32)])


def test_staging_buffer_reuse_does_not_leak_state(rng):
    """A large batch followed by a small one reuses the staging slab;
    stale identity-padding or carries must not bleed through."""
    op = get_op("add")
    dtype = np.dtype(np.int64)
    batched = BatchedLaneKernel(op, dtype, 1)
    big = [LaneKernel(op, dtype, 1) for _ in range(6)]
    batched.feed_many(big, [make_int_array(rng, 64, dtype=np.int64) for _ in big])
    small = [LaneKernel(op, dtype, 1) for _ in range(2)]
    chunks = [make_int_array(rng, 5, dtype=np.int64) for _ in small]
    oracle = [LaneKernel(op, dtype, 1) for _ in small]
    expected = [k.feed(c.copy()) for k, c in zip(oracle, chunks)]
    produced = batched.feed_many(small, chunks)
    for got, want in zip(produced, expected):
        np.testing.assert_array_equal(got, want)
