"""Section 2.5's complexity formulas vs the simulator's measured work."""

import numpy as np
import pytest

from conftest import make_int_array
from repro.core import SamScan
from repro.gpusim.spec import K40, TITAN_X
from repro.perf.analysis import (
    analysis_table,
    measured_carry_work,
    predict_carry_complexity,
)


class TestPrediction:
    def test_c_equals_kn_over_e(self):
        # Paper: c = k*n/e.
        prediction = predict_carry_complexity(
            TITAN_X, n=48 * 1024 * 16, items_per_thread=1
        )
        k = TITAN_X.persistent_blocks
        e = TITAN_X.threads_per_block
        assert prediction.total_carries == k * (48 * 1024 * 16 // e)

    def test_af_matches_spec(self):
        prediction = predict_carry_complexity(K40, n=10**6)
        assert prediction.architectural_factor * 1000 == pytest.approx(0.92, abs=0.01)

    def test_bigger_chunks_mean_fewer_carries(self):
        small = predict_carry_complexity(TITAN_X, 2**22, items_per_thread=1)
        large = predict_carry_complexity(TITAN_X, 2**22, items_per_thread=16)
        assert large.total_carries < small.total_carries / 8

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            predict_carry_complexity(TITAN_X, 0)

    def test_analysis_table_fields(self):
        row = analysis_table(TITAN_X, 2**24)
        assert row["gpu"] == "Titan X"
        assert row["k"] == 48
        assert row["af_x1000"] == 1.46


class TestMeasuredAgainstPrediction:
    def test_decoupled_carry_work_matches_formula(self, rng):
        # The simulator's carry_additions per chunk should approach k
        # (own sum + up to k-1 predecessors), i.e. c = k*n/e overall.
        n = 64 * 1 * 64  # 64 chunks of 64 elements
        k = 8
        engine = SamScan(
            spec=TITAN_X, threads_per_block=64, items_per_thread=1, num_blocks=k
        )
        result = engine.run(make_int_array(rng, n))
        per_chunk = measured_carry_work(result)
        # Early chunks read fewer sums, so measured is slightly below k.
        assert k * 0.8 <= per_chunk <= k * 1.05

    def test_total_carries_scale_linearly_in_n(self, rng):
        engine = SamScan(
            spec=TITAN_X, threads_per_block=64, items_per_thread=1, num_blocks=8
        )
        small = engine.run(make_int_array(rng, 64 * 32)).stats.carry_additions
        large = engine.run(make_int_array(rng, 64 * 128)).stats.carry_additions
        assert large == pytest.approx(4 * small, rel=0.15)

    def test_empty_run_has_zero_work(self):
        engine = SamScan(threads_per_block=64, items_per_thread=1, num_blocks=2)
        result = engine.run(np.array([], dtype=np.int32))
        assert measured_carry_work(result) == 0.0
