"""Split-point equivalence for ``repro.stream.ScanSession``.

The session's contract: for ANY partition of an input into chunks —
empty chunks, single elements, edges inside a tuple stride — the
concatenation of ``feed`` outputs is bit-identical to a one-shot scan
of the concatenation, for every op / dtype / order / tuple size and
both inclusive and exclusive.  These tests check the contract
property-style against the host engine and the serial oracle, plus the
session-state (checkpoint) machinery.
"""

import itertools

import numpy as np
import pytest

from conftest import make_int_array
from repro.core.host import host_prefix_sum
from repro.reference import prefix_sum_serial
from repro.stream import (
    CheckpointMismatchError,
    ScanSession,
    SessionStateError,
)


def feed_partition(session, values, bounds):
    """Feed ``values`` split at ``bounds``; returns the concatenation."""
    parts = [session.feed(values[a:b]) for a, b in zip(bounds, bounds[1:])]
    parts = [p for p in parts if p.size]
    if not parts:
        return values[:0].copy()
    return np.concatenate(parts)


def random_bounds(rng, n, pieces=6):
    """A random partition of ``range(n)`` — repeats make empty chunks."""
    cuts = sorted(int(c) for c in rng.integers(0, n + 1, pieces))
    return [0] + cuts + [n]


class TestSplitPointEquivalence:
    @pytest.mark.parametrize("op", ["add", "max", "xor", "mul"])
    @pytest.mark.parametrize("order", [1, 2, 4])
    @pytest.mark.parametrize("tuple_size", [1, 3])
    @pytest.mark.parametrize("inclusive", [True, False])
    def test_random_partitions_match_one_shot(self, rng, op, order,
                                              tuple_size, inclusive):
        values = make_int_array(rng, 257)
        expected = host_prefix_sum(
            values, order=order, tuple_size=tuple_size, op=op,
            inclusive=inclusive,
        )
        for _ in range(5):
            session = ScanSession(
                op=op, order=order, tuple_size=tuple_size, inclusive=inclusive
            )
            got = feed_partition(session, values, random_bounds(rng, len(values)))
            assert np.array_equal(got, expected)

    @pytest.mark.parametrize("dtype", [np.int32, np.int64, np.uint32, np.uint64])
    def test_dtypes_with_wraparound(self, rng, dtype):
        # Values near the dtype limits force overflow wraparound in the
        # carries themselves, not only in the outputs.
        info = np.iinfo(dtype)
        values = rng.integers(
            info.min // 2 if info.min else 0, info.max // 2, 300
        ).astype(dtype)
        expected = host_prefix_sum(values, order=3, tuple_size=2)
        session = ScanSession(order=3, tuple_size=2)
        got = feed_partition(session, values, random_bounds(rng, len(values)))
        assert got.dtype == dtype
        assert np.array_equal(got, expected)

    def test_exhaustive_small_partitions(self, rng):
        # Every one of the 2^5 partitions of a 6-element input, against
        # the serial oracle (not the host engine), both flavors.
        values = make_int_array(rng, 6)
        for inclusive in (True, False):
            expected = prefix_sum_serial(
                values, order=2, tuple_size=2, inclusive=inclusive
            )
            for mask in range(32):
                bounds = (
                    [0]
                    + [i + 1 for i in range(5) if mask & (1 << i)]
                    + [6]
                )
                session = ScanSession(order=2, tuple_size=2, inclusive=inclusive)
                got = feed_partition(session, values, bounds)
                assert np.array_equal(got, expected), (bounds, inclusive)

    def test_single_element_chunks(self, rng):
        values = make_int_array(rng, 50)
        expected = host_prefix_sum(values, order=3, tuple_size=3)
        session = ScanSession(order=3, tuple_size=3)
        got = np.concatenate([session.feed(values[i:i + 1]) for i in range(50)])
        assert np.array_equal(got, expected)

    def test_chunk_edges_inside_tuple_stride(self, rng):
        # Chunk size 7 against tuple stride 4: every chunk boundary
        # falls mid-tuple, so lane phase tracking is load-bearing.
        values = make_int_array(rng, 98)
        expected = host_prefix_sum(values, tuple_size=4, inclusive=False)
        session = ScanSession(tuple_size=4, inclusive=False)
        got = feed_partition(session, values, list(range(0, 98, 7)) + [98])
        assert np.array_equal(got, expected)

    def test_empty_chunks_are_noops(self, rng):
        values = make_int_array(rng, 40)
        session = ScanSession(order=2)
        out = []
        for i in range(0, 40, 10):
            assert session.feed(values[0:0]).size == 0
            out.append(session.feed(values[i:i + 10]))
        assert np.array_equal(
            np.concatenate(out), host_prefix_sum(values, order=2)
        )
        # Empty feeds are scan no-ops but real feed calls: chunks must
        # equal the number of feed calls (8 here: 4 empty + 4 real).
        assert session.counters.chunks == 8
        assert session.counters.elements == 40
        assert session.counters.bytes_in == values.nbytes

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("op", ["add", "max", "mul"])
    def test_float_bit_identity(self, rng, dtype, op):
        # Floats are only pseudo-associative, so carry *folding* would
        # round differently; the session's prepend-continuation must
        # reproduce the one-shot rounding exactly, bit for bit.
        values = ((rng.random(301) * 2 - 1) * 1000).astype(dtype)
        expected = host_prefix_sum(values, order=2, tuple_size=2, op=op)
        session = ScanSession(op=op, order=2, tuple_size=2)
        got = feed_partition(session, values, random_bounds(rng, len(values)))
        assert got.tobytes() == expected.tobytes()

    def test_order_and_exclusive_interact_across_chunks(self, rng):
        # Exclusive applies only to the final pass; interior passes must
        # keep inclusive carries even when output is exclusive.
        values = make_int_array(rng, 100)
        expected = host_prefix_sum(values, order=3, tuple_size=2, inclusive=False)
        session = ScanSession(order=3, tuple_size=2, inclusive=False)
        got = feed_partition(session, values, [0, 1, 3, 50, 51, 100])
        assert np.array_equal(got, expected)


class TestDelegatedEngines:
    def test_parallel_inner_engine(self, rng):
        from repro.parallel import ParallelSamScan

        values = make_int_array(rng, 30_000, dtype=np.int64)
        engine = ParallelSamScan(
            num_workers=2,
            chunk_elements=2048,
            min_parallel_elements=0,
            fallback="raise",
        )
        session = ScanSession(op="add", order=2, tuple_size=3, engine=engine)
        got = feed_partition(session, values, [0, 7, 7, 11_000, 20_001, 30_000])
        expected = host_prefix_sum(values, order=2, tuple_size=3)
        assert np.array_equal(got, expected)
        assert session.counters.delegated_stage_scans > 0

    def test_engine_by_name(self, rng):
        values = make_int_array(rng, 2000)
        session = ScanSession(op="max", tuple_size=2, engine="sam")
        got = feed_partition(session, values, [0, 501, 1000, 2000])
        expected = host_prefix_sum(values, tuple_size=2, op="max")
        assert np.array_equal(got, expected)
        assert session.counters.engine_used == "sam"
        assert session.counters.delegated_stage_scans == 3

    def test_floats_bypass_delegation(self, rng):
        # Engines only guarantee bit-identity for integers; float
        # chunks must silently take the exact host continuation.
        values = rng.random(5000).astype(np.float64)
        session = ScanSession(engine="parallel")
        got = feed_partition(session, values, [0, 1234, 5000])
        assert got.tobytes() == host_prefix_sum(values).tobytes()
        assert session.counters.delegated_stage_scans == 0


class TestSessionState:
    def test_snapshot_and_restore_continues_identically(self, rng):
        values = make_int_array(rng, 200)
        expected = host_prefix_sum(values, order=2, tuple_size=3, inclusive=False)

        first = ScanSession(order=2, tuple_size=3, inclusive=False)
        head = first.feed(values[:77])
        state = first.state_dict()

        second = ScanSession(
            order=2, tuple_size=3, inclusive=False, dtype=np.int32
        )
        second.load_state_dict(state)
        tail = second.feed(values[77:])
        assert np.array_equal(np.concatenate([head, tail]), expected)
        assert second.offset == 200

    def test_state_roundtrips_through_json(self, rng):
        import json

        values = make_int_array(rng, 64, dtype=np.uint64, lo=0, hi=2**40)
        session = ScanSession(dtype=np.uint64, tuple_size=3)
        session.feed(values[:41])
        state = json.loads(json.dumps(session.state_dict()))
        clone = ScanSession(dtype=np.uint64, tuple_size=3)
        clone.load_state_dict(state)
        a = session.feed(values[41:])
        b = clone.feed(values[41:])
        assert np.array_equal(a, b)

    def test_mismatched_config_rejected(self, rng):
        session = ScanSession(order=2, dtype=np.int32)
        session.feed(make_int_array(rng, 10))
        state = session.state_dict()
        other = ScanSession(order=3, dtype=np.int32)
        with pytest.raises(CheckpointMismatchError, match="order"):
            other.load_state_dict(state)

    def test_snapshot_before_dtype_known_rejected(self):
        with pytest.raises(SessionStateError, match="dtype"):
            ScanSession().state_dict()

    def test_dtype_locked_after_first_feed(self, rng):
        session = ScanSession()
        session.feed(make_int_array(rng, 8, dtype=np.int32))
        with pytest.raises(SessionStateError, match="locked"):
            session.feed(make_int_array(rng, 8, dtype=np.int64))

    def test_validation(self):
        with pytest.raises(ValueError, match="order"):
            ScanSession(order=0)
        with pytest.raises(ValueError, match="tuple_size"):
            ScanSession(tuple_size=0)
        with pytest.raises(ValueError, match="1-D"):
            ScanSession().feed(np.zeros((2, 2), dtype=np.int32))

    def test_counters_shape(self, rng):
        values = make_int_array(rng, 100)
        session = ScanSession()
        session.feed(values[:60])
        session.feed(values[60:])
        c = session.counters
        assert c.chunks == 2
        assert c.elements == 100
        assert c.bytes_in == values.nbytes
        assert c.seconds_scan > 0
        data = c.as_dict()
        assert data["engine_used"] == "host"
        assert "seconds_total" in data
        assert "chunks=2" in str(c)


class TestCountersRoundTrip:
    def test_to_dict_from_dict_is_exact(self, rng):
        session = ScanSession(op="add", dtype=np.int64)
        session.feed(make_int_array(rng, 100, dtype=np.int64))
        session.feed(make_int_array(rng, 50, dtype=np.int64))
        c = session.counters
        back = type(c).from_dict(c.to_dict())
        assert back == c

    def test_to_dict_is_json_stable(self, rng):
        import json

        session = ScanSession(op="add", dtype=np.int64)
        session.feed(make_int_array(rng, 10, dtype=np.int64))
        c = session.counters
        restored = type(c).from_dict(json.loads(json.dumps(c.to_dict())))
        assert restored == c

    def test_from_dict_accepts_as_dict_and_unknown_keys(self):
        from repro.stream.counters import StreamCounters

        c = StreamCounters(chunks=3, elements=7, batched_feeds=2)
        assert StreamCounters.from_dict(c.as_dict()) == c
        data = c.to_dict()
        data["a_future_field"] = 123
        assert StreamCounters.from_dict(data) == c

    def test_to_dict_excludes_derived_fields(self):
        from repro.stream.counters import StreamCounters

        data = StreamCounters().to_dict()
        assert "seconds_total" not in data
        assert "batched_feeds" in data


class TestStateIntegrity:
    def test_tampered_config_hash_is_typed_error(self, rng):
        """A snapshot whose recorded config no longer matches its own
        hash must raise the typed mismatch error, not be applied (and
        not a bare ValueError)."""
        session = ScanSession(op="add", dtype=np.int64, tuple_size=2)
        session.feed(make_int_array(rng, 20, dtype=np.int64))
        state = session.state_dict()
        state["config_hash"] = "0" * len(state["config_hash"])
        clone = ScanSession(op="add", dtype=np.int64, tuple_size=2)
        with pytest.raises(CheckpointMismatchError):
            clone.load_state_dict(state)

    def test_legacy_state_without_hash_still_loads(self, rng):
        values = make_int_array(rng, 60, dtype=np.int64)
        session = ScanSession(op="add", dtype=np.int64)
        session.feed(values[:37].copy())
        state = session.state_dict()
        del state["config_hash"]
        clone = ScanSession(op="add", dtype=np.int64)
        clone.load_state_dict(state)
        assert np.array_equal(
            clone.feed(values[37:].copy()), session.feed(values[37:].copy())
        )
