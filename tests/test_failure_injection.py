"""Failure-injection tests: faults must be loud, attributed, and typed."""

import numpy as np
import pytest

from conftest import make_int_array, small_sam
from repro.gpusim.errors import DeadlockError, KernelFault, SimulationError
from repro.gpusim.kernel import launch_kernel
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.spec import TITAN_X
from repro.ops import AssociativeOp


class TestOperatorFaults:
    def test_operator_raising_mid_kernel_becomes_kernel_fault(self, rng):
        calls = {"n": 0}

        def explosive(a, b):
            calls["n"] += 1
            if calls["n"] > 10:
                raise FloatingPointError("synthetic operator fault")
            return np.add(a, b)

        op = AssociativeOp("explosive", fn=explosive, identity_fn=lambda dt: 0)
        with pytest.raises(KernelFault) as excinfo:
            small_sam().run(make_int_array(rng, 5000), op=op)
        assert isinstance(excinfo.value.original, FloatingPointError)
        assert excinfo.value.block_id >= 0

    def test_fault_message_names_block(self, rng):
        def bad(a, b):
            raise ValueError("broken")

        op = AssociativeOp("bad", fn=bad, identity_fn=lambda dt: 0)
        with pytest.raises(KernelFault, match="kernel fault in block"):
            small_sam().run(make_int_array(rng, 1000), op=op)


class TestProtocolFaults:
    def test_waiting_on_future_chunk_deadlocks(self):
        # A kernel that waits on a flag nobody will ever raise must be
        # detected, not spin forever.
        gmem = GlobalMemory()
        flags = gmem.alloc("flags", 8, np.int64)

        def kernel(ctx):
            while gmem.load_scalar(flags, 7) == 0:
                yield

        with pytest.raises(DeadlockError):
            launch_kernel(
                kernel, TITAN_X, gmem=gmem, num_blocks=2, max_idle_rounds=4
            )

    def test_deadlock_error_is_simulation_error(self):
        assert issubclass(DeadlockError, SimulationError)
        assert issubclass(KernelFault, SimulationError)

    def test_undersized_circular_buffer_detected_or_correct(self, rng):
        # Force heavy slot reuse: tiny buffer relative to chunk count.
        # The protocol must either stay correct or raise the overrun
        # error — silent corruption is the only unacceptable outcome.
        from repro.reference import prefix_sum_serial

        values = make_int_array(rng, 32 * 60)
        engine = small_sam(threads_per_block=32, items_per_thread=1, num_blocks=3)
        try:
            result = engine.run(values, order=3)
        except SimulationError:
            return  # loud failure is acceptable
        assert np.array_equal(result.values, prefix_sum_serial(values, order=3))


class TestInputFaults:
    def test_nan_propagates_for_float_add(self):
        values = np.array([1.0, np.nan, 2.0], dtype=np.float64)
        result = small_sam().run(values)
        assert np.isnan(result.values[1]) and np.isnan(result.values[2])

    def test_mixed_extreme_values(self, rng):
        from repro.reference import prefix_sum_serial

        info = np.iinfo(np.int64)
        values = rng.choice(
            np.array([info.min, info.max, 0, -1, 1], dtype=np.int64), size=2000
        )
        result = small_sam().run(values, order=2)
        assert np.array_equal(result.values, prefix_sum_serial(values, order=2))
