"""Unit tests for the carry-propagation machinery."""

import numpy as np
import pytest

from repro.core.carry import (
    AuxBuffers,
    next_power_of_two,
    predecessors,
)
from repro.gpusim.errors import SimulationError
from repro.gpusim.memory import GlobalMemory


class TestNextPowerOfTwo:
    def test_values(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(3) == 4
        assert next_power_of_two(4) == 4
        assert next_power_of_two(97) == 128

    def test_invalid(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestPredecessors:
    def test_first_chunks_need_all_priors(self):
        # Block's first chunk: no register carry yet, read everything.
        assert list(predecessors(0, 4)) == []
        assert list(predecessors(2, 4)) == [0, 1]

    def test_steady_state_needs_k_minus_1(self):
        # Section 2.2: own previous total is in registers; only the k-1
        # intervening chunks' sums are read.
        assert list(predecessors(7, 4)) == [4, 5, 6]
        assert len(list(predecessors(100, 48))) == 47

    def test_boundary_chunk_k(self):
        assert list(predecessors(4, 4)) == [1, 2, 3]


class TestAuxBuffers:
    def make(self, k=4, order=1, tuple_size=1, factor=3):
        gmem = GlobalMemory()
        aux = AuxBuffers(gmem, k, order, tuple_size, np.int32, buffer_factor=factor)
        return gmem, aux

    def test_capacity_is_power_of_two_above_3k(self):
        _, aux = self.make(k=4)
        assert aux.capacity == 16  # next_pow2(3*4 + 1)
        _, aux48 = self.make(k=48)
        assert aux48.capacity == 256  # "a little over 3k ... power of two"

    def test_buffer_factor_below_3_rejected(self):
        gmem = GlobalMemory()
        with pytest.raises(ValueError, match="buffer_factor"):
            AuxBuffers(gmem, 4, 1, 1, np.int32, buffer_factor=2)

    def test_one_sum_array_per_order(self):
        gmem, aux = self.make(order=3)
        assert len(aux.sums) == 3
        assert gmem.get("sam_sums_0") is aux.sums[0].data or True  # named allocs exist

    def test_flag_targets_increase_across_iterations_and_generations(self):
        _, aux = self.make(order=2)
        b = aux.capacity
        targets = [
            aux.flag_target(0, 0),
            aux.flag_target(0, 1),
            aux.flag_target(b, 0),
            aux.flag_target(b, 1),
            aux.flag_target(2 * b, 0),
        ]
        assert targets == sorted(targets)
        assert len(set(targets)) == len(targets)

    def test_publish_then_poll(self):
        _, aux = self.make(order=1, tuple_size=2)
        sums = np.array([7, 9], dtype=np.int32)
        assert not aux.poll([3], 0)[0]
        aux.publish(3, 0, sums)
        assert aux.poll([3], 0)[0]
        assert np.array_equal(aux.read_sums([3], 0)[0], sums)

    def test_publish_wrong_width_rejected(self):
        _, aux = self.make(tuple_size=2)
        with pytest.raises(ValueError, match="lane sums"):
            aux.publish(0, 0, np.array([1], dtype=np.int32))

    def test_publish_orders_fence_between_sum_and_flag(self):
        gmem, aux = self.make()
        aux.publish(0, 0, np.array([1], dtype=np.int32))
        assert gmem.stats.fences == 1

    def test_higher_iteration_implies_lower_ready(self):
        # Count semantics (Section 2.4): a flag at iteration 2 also
        # answers polls for iterations 0 and 1.
        _, aux = self.make(order=3)
        aux.publish(5, 0, np.array([1], dtype=np.int32))
        aux.publish(5, 1, np.array([2], dtype=np.int32))
        assert aux.poll([5], 0)[0]
        assert aux.poll([5], 1)[0]
        assert not aux.poll([5], 2)[0]

    def test_circular_slot_reuse(self):
        _, aux = self.make(k=4)
        b = aux.capacity
        aux.publish(1, 0, np.array([11], dtype=np.int32))
        # Much later chunk reuses slot 1 in a later generation.
        aux.publish(1 + b, 0, np.array([22], dtype=np.int32))
        assert aux.poll([1 + b], 0)[0]
        assert aux.read_sums([1 + b], 0)[0][0] == 22

    def test_overrun_detection(self):
        _, aux = self.make(k=4)
        b = aux.capacity
        aux.publish(1 + b, 0, np.array([22], dtype=np.int32))
        # A reader still waiting for generation-0 chunk 1 discovers its
        # slot was overwritten -> loud failure, not silent corruption.
        with pytest.raises(SimulationError, match="overrun"):
            aux.poll([1], 0)

    def test_poll_counts_failed_polls(self):
        gmem, aux = self.make()
        aux.publish(0, 0, np.array([1], dtype=np.int32))
        aux.poll([0, 1, 2], 0)
        assert gmem.stats.flag_polls == 3
        assert gmem.stats.failed_flag_polls == 2

    def test_read_sums_shape(self):
        _, aux = self.make(order=1, tuple_size=3)
        for chunk in range(4):
            aux.publish(chunk, 0, np.arange(3, dtype=np.int32) + 10 * chunk)
        out = aux.read_sums([1, 3], 0)
        assert out.shape == (2, 3)
        assert np.array_equal(out[0], np.array([10, 11, 12], dtype=np.int32))
        assert np.array_equal(out[1], np.array([30, 31, 32], dtype=np.int32))
