"""Tests for difference sequences (delta encoding) of arbitrary order."""

import numpy as np
import pytest

from repro.reference import (
    binomial_coefficient,
    delta_decode_serial,
    delta_encode_closed_form,
    delta_encode_serial,
    higher_order_weights,
)

PAPER_INPUT = np.array([1, 2, 3, 4, 5, 2, 4, 6, 8, 10], dtype=np.int32)


class TestBinomial:
    def test_small_values(self):
        assert binomial_coefficient(4, 2) == 6
        assert binomial_coefficient(5, 0) == 1
        assert binomial_coefficient(5, 5) == 1

    def test_out_of_range_is_zero(self):
        assert binomial_coefficient(3, 5) == 0
        assert binomial_coefficient(3, -1) == 0

    def test_pascal_rule(self):
        for n in range(2, 12):
            for k in range(1, n):
                assert binomial_coefficient(n, k) == (
                    binomial_coefficient(n - 1, k - 1) + binomial_coefficient(n - 1, k)
                )

    def test_large_exact(self):
        assert binomial_coefficient(64, 32) == 1832624140942590534


class TestWeights:
    def test_order1(self):
        assert higher_order_weights(1) == [1, -1]

    def test_order2_matches_paper(self):
        # Section 2.4: out_k = in_k - 2 in_{k-1} + in_{k-2}
        assert higher_order_weights(2) == [1, -2, 1]

    def test_order3(self):
        assert higher_order_weights(3) == [1, -3, 3, -1]

    def test_weights_sum_to_zero(self):
        for q in range(1, 9):
            assert sum(higher_order_weights(q)) == 0

    def test_invalid_order(self):
        with pytest.raises(ValueError, match="order"):
            higher_order_weights(0)


class TestEncoding:
    def test_paper_first_order(self):
        expected = np.array([1, 1, 1, 1, 1, -3, 2, 2, 2, 2], dtype=np.int32)
        assert np.array_equal(delta_encode_serial(PAPER_INPUT), expected)

    def test_paper_second_order(self):
        expected = np.array([1, 0, 0, 0, 0, -4, 5, 0, 0, 0], dtype=np.int32)
        assert np.array_equal(delta_encode_serial(PAPER_INPUT, order=2), expected)

    def test_closed_form_second_order_matches_paper(self):
        expected = np.array([1, 0, 0, 0, 0, -4, 5, 0, 0, 0], dtype=np.int32)
        assert np.array_equal(delta_encode_closed_form(PAPER_INPUT, order=2), expected)

    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("tuple_size", [1, 2, 3])
    def test_closed_form_equals_iterated(self, rng, order, tuple_size):
        values = rng.integers(-100, 100, 200).astype(np.int64)
        iterated = delta_encode_serial(values, order=order, tuple_size=tuple_size)
        closed = delta_encode_closed_form(values, order=order, tuple_size=tuple_size)
        assert np.array_equal(iterated, closed)

    def test_tuple_encoding_uses_lane_predecessor(self):
        values = np.array([10, 100, 11, 102, 13, 105], dtype=np.int32)
        out = delta_encode_serial(values, tuple_size=2)
        assert np.array_equal(out, np.array([10, 100, 1, 2, 2, 3], dtype=np.int32))

    def test_short_input(self):
        values = np.array([5], dtype=np.int32)
        assert np.array_equal(delta_encode_serial(values, order=3), values)


class TestRoundTrip:
    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    @pytest.mark.parametrize("tuple_size", [1, 2, 5])
    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    def test_decode_inverts_encode(self, rng, order, tuple_size, dtype):
        values = rng.integers(
            np.iinfo(dtype).min // 2, np.iinfo(dtype).max // 2, 300
        ).astype(dtype)
        deltas = delta_encode_serial(values, order=order, tuple_size=tuple_size)
        decoded = delta_decode_serial(deltas, order=order, tuple_size=tuple_size)
        assert np.array_equal(decoded, values)

    def test_round_trip_at_extremes(self):
        # Wraparound makes the inverse exact even at dtype extremes.
        values = np.array(
            [np.iinfo(np.int32).min, np.iinfo(np.int32).max, -1, 0, 1],
            dtype=np.int32,
        )
        deltas = delta_encode_serial(values, order=2)
        assert np.array_equal(delta_decode_serial(deltas, order=2), values)
