"""Property-based tests (hypothesis) for the core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from conftest import small_sam
from repro.api import delta_decode, delta_encode, prefix_sum, scan
from repro.compression import varint_decode, varint_encode, zigzag_decode, zigzag_encode
from repro.core.host import host_prefix_sum, host_scan
from repro.ops import ADD, BUILTIN_OPS
from repro.reference import (
    delta_encode_closed_form,
    delta_encode_serial,
    inclusive_scan_serial,
    prefix_sum_serial,
    tuple_prefix_sum_serial,
)

int32_arrays = arrays(
    dtype=np.int32,
    shape=st.integers(0, 300),
    elements=st.integers(-(2**31), 2**31 - 1),
)

small_int32_arrays = arrays(
    dtype=np.int32,
    shape=st.integers(1, 200),
    elements=st.integers(-(2**20), 2**20),
)

orders = st.integers(1, 4)
tuples = st.integers(1, 5)


class TestScanAlgebra:
    @given(values=int32_arrays, tuple_size=tuples)
    def test_host_matches_serial_reference(self, values, tuple_size):
        got = host_scan(values, tuple_size=tuple_size)
        expected = inclusive_scan_serial(values, tuple_size=tuple_size)
        assert np.array_equal(got, expected)

    @given(values=int32_arrays, order=orders, tuple_size=tuples)
    def test_order_q_is_iterated_order_1(self, values, order, tuple_size):
        direct = host_prefix_sum(values, order=order, tuple_size=tuple_size)
        iterated = values
        for _ in range(order):
            iterated = host_scan(iterated, tuple_size=tuple_size)
        assert np.array_equal(direct, iterated)

    @given(values=int32_arrays, tuple_size=tuples)
    def test_tuple_scan_equals_reorder_formulation(self, values, tuple_size):
        strided = host_scan(values, tuple_size=tuple_size)
        reordered = tuple_prefix_sum_serial(values, tuple_size=tuple_size)
        assert np.array_equal(strided, reordered)

    @given(a=small_int32_arrays, b=small_int32_arrays)
    def test_scan_of_concatenation(self, a, b):
        # scan(a ++ b) = scan(a) ++ (total(a) + scan(b)) — the chunking
        # identity every blocked scan relies on.
        joined = host_scan(np.concatenate([a, b]))
        scan_a = host_scan(a)
        with np.errstate(over="ignore"):
            tail = (scan_a[-1] + host_scan(b)).astype(np.int32)
        assert np.array_equal(joined, np.concatenate([scan_a, tail]))

    @given(values=int32_arrays)
    def test_exclusive_is_shifted_inclusive(self, values):
        inc = host_scan(values)
        exc = host_scan(values, inclusive=False)
        if len(values):
            assert exc[0] == 0
            assert np.array_equal(exc[1:], inc[:-1])

    @given(values=int32_arrays, op_name=st.sampled_from(sorted(BUILTIN_OPS)))
    def test_scan_first_element_is_input(self, values, op_name):
        if len(values) == 0:
            return
        out = scan(values, op=op_name)
        assert out[0] == values[0]


class TestDeltaInverses:
    @given(values=int32_arrays, order=orders, tuple_size=tuples)
    def test_decode_inverts_encode(self, values, order, tuple_size):
        deltas = delta_encode(values, order=order, tuple_size=tuple_size)
        assert np.array_equal(
            delta_decode(deltas, order=order, tuple_size=tuple_size), values
        )

    @given(values=int32_arrays, order=orders, tuple_size=tuples)
    def test_encode_inverts_decode(self, values, order, tuple_size):
        summed = prefix_sum(values, order=order, tuple_size=tuple_size)
        assert np.array_equal(
            delta_encode(summed, order=order, tuple_size=tuple_size), values
        )

    @given(values=int32_arrays, order=st.integers(1, 5), tuple_size=tuples)
    def test_closed_form_equals_iterated_differencing(self, values, order, tuple_size):
        iterated = delta_encode_serial(values, order=order, tuple_size=tuple_size)
        closed = delta_encode_closed_form(values, order=order, tuple_size=tuple_size)
        assert np.array_equal(iterated, closed)


class TestSimulatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        values=arrays(
            dtype=np.int32,
            shape=st.integers(1, 2000),
            elements=st.integers(-(2**31), 2**31 - 1),
        ),
        order=st.integers(1, 3),
        tuple_size=st.integers(1, 4),
    )
    def test_sam_matches_reference(self, values, order, tuple_size):
        result = small_sam().run(values, order=order, tuple_size=tuple_size)
        expected = prefix_sum_serial(values, order=order, tuple_size=tuple_size)
        assert np.array_equal(result.values, expected)

    @settings(max_examples=15, deadline=None)
    @given(
        values=arrays(
            dtype=np.int32,
            shape=st.integers(64, 1500),
            elements=st.integers(-(2**24), 2**24),
        ),
        policy=st.sampled_from(["round_robin", "reversed", "rotating", "random"]),
        scheme=st.sampled_from(["decoupled", "chained"]),
    )
    def test_sam_schedule_and_scheme_independence(self, values, policy, scheme):
        result = small_sam(policy=policy, carry_scheme=scheme, num_blocks=5).run(
            values, order=2
        )
        assert np.array_equal(result.values, prefix_sum_serial(values, order=2))

    @settings(max_examples=20, deadline=None)
    @given(
        values=arrays(
            dtype=np.int64,
            shape=st.integers(1, 1200),
            elements=st.integers(-(2**40), 2**40),
        )
    )
    def test_sam_traffic_bounded(self, values):
        result = small_sam().run(values)
        # 2n data words plus bounded auxiliary traffic.
        assert result.stats.global_words_total >= 2 * len(values)
        assert result.stats.global_words_total <= 2 * len(values) + 80 * result.num_chunks


class TestCoderProperties:
    @given(
        values=arrays(
            dtype=np.int64,
            shape=st.integers(0, 300),
            elements=st.integers(-(2**63), 2**63 - 1),
        )
    )
    def test_zigzag_round_trip(self, values):
        assert np.array_equal(zigzag_decode(zigzag_encode(values)), values)

    @given(
        values=arrays(
            dtype=np.uint64,
            shape=st.integers(0, 200),
            elements=st.integers(0, 2**64 - 1),
        )
    )
    def test_varint_round_trip(self, values):
        data = varint_encode(values)
        assert np.array_equal(varint_decode(data, len(values)), values)

    @given(
        values=arrays(
            dtype=np.int64,
            shape=st.integers(0, 150),
            elements=st.integers(-(2**30), 2**30),
        )
    )
    def test_zigzag_preserves_magnitude_order(self, values):
        encoded = zigzag_encode(values)
        magnitudes = np.abs(values.astype(np.float64))
        order_a = np.argsort(magnitudes, kind="stable")
        assert np.all(np.diff(encoded[order_a].astype(np.float64)) >= -1)
