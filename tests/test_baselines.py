"""Oracle and traffic tests for the baseline scan engines."""

import numpy as np
import pytest

from conftest import make_int_array, small_sam
from repro.baselines import (
    DecoupledLookbackScan,
    ReduceThenScan,
    ReorderScanEngine,
    ThreePhaseScan,
)
from repro.gpusim.spec import TITAN_X
from repro.reference import exclusive_scan_serial, prefix_sum_serial

ENGINE_KW = dict(threads_per_block=64, items_per_thread=2)


def engines():
    return {
        "three_phase": ThreePhaseScan(**ENGINE_KW),
        "reduce_scan": ReduceThenScan(**ENGINE_KW),
        "lookback": DecoupledLookbackScan(**ENGINE_KW),
    }


class TestOracle:
    @pytest.mark.parametrize("name", ["three_phase", "reduce_scan", "lookback"])
    @pytest.mark.parametrize("n", [1, 127, 128, 129, 1000, 5003])
    def test_conventional(self, rng, name, n):
        values = make_int_array(rng, n)
        result = engines()[name].run(values)
        assert np.array_equal(result.values, prefix_sum_serial(values))

    @pytest.mark.parametrize("name", ["three_phase", "reduce_scan", "lookback"])
    @pytest.mark.parametrize("order", [2, 3])
    def test_higher_order(self, rng, name, order):
        values = make_int_array(rng, 3000, dtype=np.int64)
        result = engines()[name].run(values, order=order)
        assert np.array_equal(result.values, prefix_sum_serial(values, order=order))

    @pytest.mark.parametrize("name", ["three_phase", "reduce_scan", "lookback"])
    @pytest.mark.parametrize("tuple_size", [2, 5])
    def test_tuples(self, rng, name, tuple_size):
        n = 3000 - 3000 % tuple_size
        values = make_int_array(rng, n)
        result = engines()[name].run(values, tuple_size=tuple_size)
        assert np.array_equal(
            result.values, prefix_sum_serial(values, tuple_size=tuple_size)
        )

    @pytest.mark.parametrize("name", ["three_phase", "reduce_scan", "lookback"])
    def test_exclusive(self, rng, name):
        values = make_int_array(rng, 2000)
        result = engines()[name].run(values, inclusive=False)
        assert np.array_equal(result.values, exclusive_scan_serial(values))

    @pytest.mark.parametrize("name", ["three_phase", "reduce_scan", "lookback"])
    @pytest.mark.parametrize("op", ["max", "xor"])
    def test_operators(self, rng, name, op):
        values = make_int_array(rng, 1500)
        result = engines()[name].run(values, op=op)
        assert np.array_equal(result.values, prefix_sum_serial(values, op=op))

    @pytest.mark.parametrize("name", ["three_phase", "reduce_scan", "lookback"])
    def test_empty(self, name):
        result = engines()[name].run(np.array([], dtype=np.int32))
        assert result.values.size == 0

    @pytest.mark.parametrize("name", ["three_phase", "reduce_scan", "lookback"])
    def test_validation(self, name):
        engine = engines()[name]
        with pytest.raises(ValueError):
            engine.run(np.zeros((2, 2), dtype=np.int32))
        with pytest.raises(ValueError):
            engine.run(np.zeros(4, dtype=np.int32), order=0)


class TestTrafficCoefficients:
    """The 2n / 3n / 4n counting claims of Sections 2.1 and 3.1."""

    def test_three_phase_is_4n(self, rng):
        result = ThreePhaseScan(**ENGINE_KW).run(make_int_array(rng, 8192))
        assert 4.0 <= result.words_per_element() < 4.3

    def test_reduce_then_scan_is_3n(self, rng):
        result = ReduceThenScan(**ENGINE_KW).run(make_int_array(rng, 8192))
        assert 3.0 <= result.words_per_element() < 3.3

    def test_lookback_is_2n(self, rng):
        result = DecoupledLookbackScan(**ENGINE_KW).run(make_int_array(rng, 8192))
        assert 2.0 <= result.words_per_element() < 2.4

    def test_iterated_higher_order_scales_traffic(self, rng):
        # CUB-style: order q costs ~2qn words (vs SAM's constant 2n).
        values = make_int_array(rng, 8192)
        engine = DecoupledLookbackScan(**ENGINE_KW)
        w1 = engine.run(values, order=1).stats.global_words_total
        w3 = engine.run(values, order=3).stats.global_words_total
        assert 2.7 <= w3 / w1 <= 3.3

    def test_three_phase_uses_multiple_launches(self, rng):
        result = ThreePhaseScan(**ENGINE_KW).run(make_int_array(rng, 8192))
        assert result.stats.kernel_launches >= 3

    def test_lookback_single_launch_per_pass(self, rng):
        values = make_int_array(rng, 8192)
        engine = DecoupledLookbackScan(**ENGINE_KW)
        assert engine.run(values, order=1).stats.kernel_launches == 1
        assert engine.run(values, order=3).stats.kernel_launches == 3


class TestThreePhaseSpecifics:
    def test_cudpp_size_limit(self, rng):
        engine = ThreePhaseScan(max_elements=4096, **ENGINE_KW)
        engine.run(make_int_array(rng, 4096))  # at the limit: fine
        with pytest.raises(ValueError, match="max_elements"):
            engine.run(make_int_array(rng, 4097))

    def test_recursive_aux_scan(self, rng):
        # Enough chunks that the aux array exceeds one chunk, forcing
        # the "third, even coarser level of granularity".
        engine = ThreePhaseScan(
            spec=TITAN_X, threads_per_block=32, items_per_thread=1
        )
        values = make_int_array(rng, 32 * 40)
        result = engine.run(values)
        assert np.array_equal(result.values, prefix_sum_serial(values))
        assert result.stats.kernel_launches > 3


class TestLookbackSpecifics:
    def test_tuple_needs_divisible_size(self, rng):
        engine = DecoupledLookbackScan(**ENGINE_KW)
        with pytest.raises(ValueError, match="multiple of the tuple size"):
            engine.run(make_int_array(rng, 1001), tuple_size=2)

    def test_tuple_datatype_degrades_coalescing(self, rng):
        # Section 2.3/5.3: whole tuples per thread -> strided accesses.
        values = make_int_array(rng, 5120)
        engine = DecoupledLookbackScan(**ENGINE_KW)
        t1 = engine.run(values, tuple_size=1).stats.global_read_transactions
        t8 = engine.run(values, tuple_size=8).stats.global_read_transactions
        assert t8 > 3 * t1

    def test_sam_coalescing_does_not_degrade(self, rng):
        # The contrast: SAM reads linearly regardless of s.
        values = make_int_array(rng, 5120)
        sam1 = small_sam().run(values, tuple_size=1).stats.global_read_transactions
        sam8 = small_sam().run(values, tuple_size=8).stats.global_read_transactions
        assert sam8 <= sam1 * 1.2

    def test_lookback_aux_memory_scales_with_n(self, rng):
        # O(n) auxiliary state (one status per tile) vs SAM's O(1):
        # more tiles -> more status writes.
        engine = DecoupledLookbackScan(**ENGINE_KW)
        small = engine.run(make_int_array(rng, 1024))
        large = engine.run(make_int_array(rng, 16384))
        assert large.num_chunks > small.num_chunks

    @pytest.mark.parametrize("policy", ["round_robin", "reversed", "rotating"])
    def test_schedule_independence(self, rng, policy):
        values = make_int_array(rng, 4000)
        engine = DecoupledLookbackScan(policy=policy, **ENGINE_KW)
        assert np.array_equal(engine.run(values).values, prefix_sum_serial(values))

    def test_lookback_walk_length_varies_with_schedule(self, rng):
        # CUB's "laggard" pull: under a hostile schedule the walk is
        # longer (more aggregates folded before finding a prefix).
        values = make_int_array(rng, 8000)
        friendly = DecoupledLookbackScan(**ENGINE_KW).run(values)
        hostile = DecoupledLookbackScan(policy="reversed", **ENGINE_KW).run(values)
        assert hostile.stats.carry_additions >= friendly.stats.carry_additions


class TestReorderEngine:
    def test_matches_reference(self, rng):
        base = small_sam()
        engine = ReorderScanEngine(base)
        values = make_int_array(rng, 4000)
        result = engine.run(values, tuple_size=4)
        assert np.array_equal(result.values, prefix_sum_serial(values, tuple_size=4))

    def test_higher_order_tuples(self, rng):
        engine = ReorderScanEngine(small_sam())
        values = make_int_array(rng, 3000)
        result = engine.run(values, order=2, tuple_size=2)
        assert np.array_equal(
            result.values, prefix_sum_serial(values, order=2, tuple_size=2)
        )

    def test_costs_about_6n(self, rng):
        # 2n gather + 2n scan + 2n scatter (Section 2.3: "it is slow").
        engine = ReorderScanEngine(small_sam())
        result = engine.run(make_int_array(rng, 8192), tuple_size=4)
        assert 5.8 <= result.words_per_element() < 6.6

    def test_more_expensive_than_direct_sam(self, rng):
        values = make_int_array(rng, 8192)
        direct = small_sam().run(values, tuple_size=4)
        reordered = ReorderScanEngine(small_sam()).run(values, tuple_size=4)
        assert (
            reordered.stats.global_words_total
            > 2 * direct.stats.global_words_total
        )

    def test_needs_divisible_size(self, rng):
        engine = ReorderScanEngine(small_sam())
        with pytest.raises(ValueError, match="multiple"):
            engine.run(make_int_array(rng, 1001), tuple_size=2)

    def test_tuple1_delegates(self, rng):
        engine = ReorderScanEngine(small_sam())
        values = make_int_array(rng, 1000)
        result = engine.run(values, tuple_size=1)
        assert np.array_equal(result.values, prefix_sum_serial(values))
