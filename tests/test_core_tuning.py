"""The install-time kernel-geometry tuner (`repro.core.tuning`).

The tuner feeds the lane kernel its cache-block geometry and the
threaded kernel its parallel cutover, so its contract matters: env
overrides always win, ``REPRO_TUNE_DISABLE`` falls back to the PR 5
constants, measurements round-trip through the disk cache, and a
broken cache (or an unwritable one) degrades to re-measuring — never
to an exception reaching a scan.
"""

import json

import numpy as np
import pytest

from repro.core.tuning import (
    DEFAULT_BLOCK_BYTES,
    DEFAULT_BLOCKED_MIN_STRIDE_BYTES,
    DEFAULT_PARALLEL_CUTOVER_BYTES,
    _KERNEL_TUNING_MEMO,
    KernelTuning,
    kernel_tuning,
    measure_kernel_tuning,
)


@pytest.fixture(autouse=True)
def isolated_tuner(tmp_path, monkeypatch):
    """Every test gets a private cache file and a clean memo."""
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "tuning.json"))
    monkeypatch.delenv("REPRO_TUNE_DISABLE", raising=False)
    for var in ("REPRO_BLOCK_BYTES", "REPRO_BLOCKED_MIN_STRIDE_BYTES",
                "REPRO_PARALLEL_CUTOVER_BYTES"):
        monkeypatch.delenv(var, raising=False)
    _KERNEL_TUNING_MEMO.clear()
    yield
    _KERNEL_TUNING_MEMO.clear()


def test_disable_returns_defaults(monkeypatch):
    monkeypatch.setenv("REPRO_TUNE_DISABLE", "1")
    tuning = kernel_tuning(np.int64)
    assert tuning == KernelTuning()
    assert tuning.source == "default"
    assert tuning.block_bytes == DEFAULT_BLOCK_BYTES
    assert tuning.min_stride_bytes == DEFAULT_BLOCKED_MIN_STRIDE_BYTES
    assert tuning.parallel_cutover_bytes == DEFAULT_PARALLEL_CUTOVER_BYTES


def test_env_overrides_win(monkeypatch):
    monkeypatch.setenv("REPRO_TUNE_DISABLE", "1")
    monkeypatch.setenv("REPRO_BLOCK_BYTES", str(1 << 16))
    monkeypatch.setenv("REPRO_PARALLEL_CUTOVER_BYTES", str(123))
    tuning = kernel_tuning(np.int64)
    assert tuning.source == "env"
    assert tuning.block_bytes == 1 << 16
    assert tuning.parallel_cutover_bytes == 123
    # Unpinned values keep their resolved setting.
    assert tuning.min_stride_bytes == DEFAULT_BLOCKED_MIN_STRIDE_BYTES


def test_bad_env_value_raises(monkeypatch):
    monkeypatch.setenv("REPRO_TUNE_DISABLE", "1")
    monkeypatch.setenv("REPRO_BLOCK_BYTES", "not-a-number")
    with pytest.raises(ValueError, match="REPRO_BLOCK_BYTES"):
        kernel_tuning(np.int64)


def test_measure_is_sane():
    tuning = measure_kernel_tuning(np.int64)
    assert tuning.source == "measured"
    assert tuning.block_bytes >= 1 << 10
    assert tuning.min_stride_bytes >= 1
    assert (1 << 20) <= tuning.parallel_cutover_bytes <= (32 << 20)


def test_cache_roundtrip(tmp_path, monkeypatch):
    cache = tmp_path / "tuning.json"
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(cache))
    first = kernel_tuning(np.int32)
    assert first.source == "measured"
    assert cache.exists()
    entries = json.loads(cache.read_text())["entries"]
    assert entries["i4"]["block_bytes"] == first.block_bytes

    # A fresh process (cleared memo) resolves from the cache, not a
    # re-measurement.
    _KERNEL_TUNING_MEMO.clear()
    second = kernel_tuning(np.int32)
    assert second.source == "cached"
    assert second.block_bytes == first.block_bytes
    assert second.parallel_cutover_bytes == first.parallel_cutover_bytes


def test_corrupt_cache_re_measures(tmp_path, monkeypatch):
    cache = tmp_path / "tuning.json"
    cache.write_text("{not json")
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(cache))
    tuning = kernel_tuning(np.int64)
    assert tuning.source == "measured"
    # ... and the cache healed.
    assert json.loads(cache.read_text())["version"] == 1


def test_memoized_per_dtype(monkeypatch):
    monkeypatch.setenv("REPRO_TUNE_DISABLE", "1")
    assert kernel_tuning(np.int64) is kernel_tuning("int64")
    assert kernel_tuning(np.int64) is not None


def test_lane_kernel_geometry_survives_tuner_failure(monkeypatch):
    """The lane kernel's lazy geometry lookup must never break a scan."""
    from repro.kernels import lane

    def boom(dtype):
        raise RuntimeError("tuner exploded")

    monkeypatch.setattr("repro.core.tuning.kernel_tuning", boom)
    memo_backup = dict(lane._GEOMETRY_MEMO)
    lane._GEOMETRY_MEMO.clear()
    try:
        geometry = lane._blocked_geometry(np.dtype(np.int64))
        assert geometry == (lane.BLOCK_BYTES, lane.BLOCKED_MIN_STRIDE_BYTES)
        values = np.arange(100, dtype=np.int64)
        from repro.ops import ADD

        out = lane.lane_scan(values, ADD, 4, out=np.empty_like(values))
        assert out[4] == values[0] + values[4]
    finally:
        lane._GEOMETRY_MEMO.clear()
        lane._GEOMETRY_MEMO.update(memo_backup)
