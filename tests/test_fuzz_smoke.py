"""Smoke test for the differential fuzzing tool (short runs).

The tool itself (`tools/fuzz_engines.py`) is meant for long campaigns;
these tests keep it importable and verify short runs stay green and
that it actually detects an injected mismatch.
"""

import pathlib
import sys

import numpy as np


sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))

from fuzz_engines import build_engine, main, random_config, run_one  # noqa: E402


class TestFuzzTool:
    def test_short_campaign_is_green(self, capsys):
        assert main(["--iterations", "30", "--seed", "11"]) == 0
        out = capsys.readouterr().out
        assert "0 failures" in out

    def test_random_config_fields(self):
        rng = np.random.default_rng(0)
        config = random_config(rng)
        assert config["engine"] in (
            "sam", "sam_chained", "lookback", "reduce_scan",
            "three_phase", "streamscan", "parallel", "parallel_chained",
            "stream", "sharded", "threaded", "plan", "compressed",
            "float_eft",
        )
        assert 1 <= config["order"] <= 4
        assert 1 <= config["tuple_size"] <= 8

    def test_every_engine_kind_constructible(self):
        rng = np.random.default_rng(1)
        seen = set()
        for _ in range(200):
            config = random_config(rng)
            if config["engine"] in seen:
                continue
            seen.add(config["engine"])
            if config["engine"] not in ("float_eft", "fused_order"):
                # float_eft and fused_order drive several engines per
                # iteration and are dispatched before construction in
                # run_one.
                build_engine(config)
        assert len(seen) == 15

    def test_run_one_agrees(self):
        rng = np.random.default_rng(2)
        for _ in range(5):
            config = random_config(rng)
            assert run_one(config, rng)

    def test_detects_broken_engine(self, monkeypatch, capsys):
        # Sabotage the oracle comparison path: a mismatching engine
        # must be reported with a nonzero exit code.
        import fuzz_engines

        class BrokenEngine:
            def run(self, values, **kw):
                class R:
                    pass

                r = R()
                # "Forgets" to scan: returns the input unchanged.
                r.values = np.asarray(values).copy()
                return r

        monkeypatch.setattr(
            fuzz_engines, "build_engine", lambda config: BrokenEngine()
        )
        code = fuzz_engines.main(["--iterations", "5", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 1
        assert "MISMATCH" in out or "CRASH" in out

    def test_stream_only_campaign(self, capsys):
        # The dedicated split-point mode: every iteration cuts the
        # input at random chunk boundaries through a ScanSession.
        assert main(
            ["--iterations", "15", "--seed", "4", "--only", "stream"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 failures" in out
