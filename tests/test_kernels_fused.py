"""Tests for the fused single-pass order-q scan path.

The fused contract: inside the exactness gate (integer ADD, order >= 2,
tuple_size >= 2) every surface — one-shot ``scan_into``, the
``LaneKernel`` continuation stream, threaded slabs, sessions, the
sharded file driver, the batched serve kernel — produces output
bit-identical to pass-per-order scanning while touching the payload
once.  Outside the gate the fused path must never engage.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import BOUNDARY_SIZES
from repro.kernels import (
    FUSED_MIN_TUPLE,
    LaneKernel,
    ThreadedScan,
    fused_combine,
    fused_lane_scan,
    fused_supported,
    fused_weights,
    lane_scan,
    scan_into,
)
from repro.ops import get_op
from repro.plan import Workload, plan_scan
from repro.reference import prefix_sum_serial
from repro.stream import ScanSession, scan_file_sharded


@pytest.fixture
def rng():
    return np.random.default_rng(20260809)


def pass_per_order(values, order, tuple_size, inclusive=True):
    """The reference layout the fused path must match bit for bit:
    ``order`` iterated lane scans (the pre-fusion kernel structure)."""
    op = get_op("add")
    out = np.empty_like(values)
    current = values
    for _ in range(order):
        lane_scan(current, op, tuple_size, out=out)
        current = out
    if inclusive:
        return out
    from repro.kernels import exclusive_shift

    heads = np.full(
        tuple_size, op.identity(out.dtype), dtype=out.dtype
    )
    return exclusive_shift(out, heads)


def full_range(rng, dtype, n):
    info = np.iinfo(dtype)
    return rng.integers(info.min, info.max, n, dtype=dtype, endpoint=True)


class TestGate:
    def test_integer_add_inside_gate(self):
        assert fused_supported("add", np.int64, 3, 4)
        assert fused_supported("add", np.uint32, 2, 2)

    def test_order_one_outside_gate(self):
        assert not fused_supported("add", np.int64, 1, 4)

    def test_float_outside_gate(self):
        assert not fused_supported("add", np.float64, 3, 4)

    def test_non_add_outside_gate(self):
        for op in ("max", "min", "xor", "and", "or"):
            assert not fused_supported(op, np.int64, 3, 4)

    def test_tuple_one_outside_gate(self):
        assert FUSED_MIN_TUPLE >= 2
        assert not fused_supported("add", np.int64, 3, 1)
        # tuple_size=None defers the engagement heuristic to the caller.
        assert fused_supported("add", np.int64, 3, None)

    def test_workload_scan_passes_mirrors_gate(self):
        kw = dict(nbytes=1 << 20, dtype="int64", op="add")
        assert Workload(order=3, tuple_size=4, **kw).scan_passes == 1
        assert Workload(order=1, tuple_size=4, **kw).scan_passes == 1
        assert Workload(order=3, tuple_size=1, **kw).scan_passes == 3
        assert (
            Workload(nbytes=1 << 20, dtype="int64", op="max",
                     order=3, tuple_size=4).scan_passes == 3
        )
        assert (
            Workload(nbytes=1 << 20, dtype="float64", op="add",
                     order=3, tuple_size=4).scan_passes == 3
        )


class TestFusedLaneScan:
    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    @pytest.mark.parametrize("order", (2, 3, 4))
    def test_boundary_sizes(self, rng, n, order):
        s = 3
        values = full_range(rng, np.int64, n)
        expected = pass_per_order(values, order, s)
        buf = values.copy()
        carry = np.zeros((order, s), dtype=buf.dtype)
        fused_lane_scan(buf, "add", s, order, carry)
        assert np.array_equal(buf, expected)

    @pytest.mark.parametrize("rows_per_tile", (4, 5, 7, 16))
    def test_tile_boundaries(self, rng, rows_per_tile):
        # Lengths straddling tile boundaries: exact multiples of the
        # tile, one row short, one element over, runt final tiles
        # (< order rows), and an unaligned n % s tail at each.
        order, s = 3, 4
        tile = rows_per_tile * s
        for n in (tile - s, tile, tile + 1, 2 * tile - 1, 2 * tile + s + 2,
                  5 * tile + (order - 1) * s, 5 * tile + 3):
            values = full_range(rng, np.int64, n)
            expected = pass_per_order(values, order, s)
            buf = values.copy()
            carry = np.zeros((order, s), dtype=buf.dtype)
            fused_lane_scan(buf, "add", s, order, carry,
                            rows_per_tile=rows_per_tile)
            assert np.array_equal(buf, expected), (n, rows_per_tile)

    def test_shorter_than_one_tile(self, rng):
        order, s = 4, 5
        values = full_range(rng, np.int32, 2 * s + 3)  # < default tile
        buf = values.copy()
        carry = np.zeros((order, s), dtype=buf.dtype)
        fused_lane_scan(buf, "add", s, order, carry)
        assert np.array_equal(buf, pass_per_order(values, order, s))

    @pytest.mark.parametrize("dtype", (np.int8, np.uint8, np.int16))
    def test_narrow_dtype_wraparound(self, rng, dtype):
        # Narrow widths wrap within a handful of rows, so every binomial
        # coefficient and carry splice runs modular; the public dtype
        # set stops at 32 bits, so these go through the raw kernel.
        order, s = 3, 2
        values = full_range(rng, dtype, 301)
        expected = pass_per_order(values, order, s)
        buf = values.copy()
        carry = np.zeros((order, s), dtype=buf.dtype)
        fused_lane_scan(buf, "add", s, order, carry, rows_per_tile=6)
        assert np.array_equal(buf, expected)

    def test_uint64_wraparound(self, rng):
        order, s = 4, 3
        values = full_range(rng, np.uint64, 4096 + 5)
        out = scan_into(values, np.empty_like(values), "add",
                        order=order, tuple_size=s)
        assert np.array_equal(out, pass_per_order(values, order, s))

    def test_carry_matrix_matches_running_totals(self, rng):
        order, s = 3, 4
        values = full_range(rng, np.int64, 10 * s)
        buf = values.copy()
        carry = np.zeros((order, s), dtype=buf.dtype)
        fused_lane_scan(buf, "add", s, order, carry, rows_per_tile=4)
        current = values.copy()
        out = np.empty_like(values)
        op = get_op("add")
        for j in range(order):
            lane_scan(current, op, s, out=out)
            assert np.array_equal(carry[j], out[-s:])
            current = out

    def test_env_pinned_tile_bytes(self, rng, monkeypatch):
        order, s = 3, 4
        monkeypatch.setenv("REPRO_FUSED_BLOCK_BYTES", "64")  # tiny tiles
        values = full_range(rng, np.int64, 457)
        out = scan_into(values, np.empty_like(values), "add",
                        order=order, tuple_size=s)
        assert np.array_equal(out, pass_per_order(values, order, s))


class TestScanInto:
    @pytest.mark.parametrize("dtype", (np.int32, np.int64, np.uint32,
                                       np.uint64))
    @pytest.mark.parametrize("inclusive", (True, False))
    def test_matches_serial_oracle(self, rng, dtype, inclusive):
        order, s = 3, 4
        values = rng.integers(-99, 99, 1003).astype(dtype)
        out = scan_into(values, np.empty_like(values), "add",
                        order=order, tuple_size=s, inclusive=inclusive)
        expected = prefix_sum_serial(values, order=order, tuple_size=s,
                                     op="add", inclusive=inclusive)
        assert np.array_equal(out, expected)

    @pytest.mark.parametrize("n", (0, 1, 7, 8, 9, 97))
    def test_unaligned_tails(self, rng, n):
        # n % s != 0 at q >= 2: the partial final row takes the
        # accumulate-of-carry formula, not the tile path.
        order, s = 2, 4
        values = full_range(rng, np.int64, n)
        out = scan_into(values, np.empty_like(values), "add",
                        order=order, tuple_size=s)
        assert np.array_equal(out, pass_per_order(values, order, s))

    def test_outside_gate_same_answer(self, rng):
        # max is not fusable; scan_into must still be correct (the
        # pass-per-order branch) and bit-equal to the oracle.
        values = rng.integers(-99, 99, 500).astype(np.int64)
        out = scan_into(values, np.empty_like(values), "max",
                        order=2, tuple_size=3)
        expected = prefix_sum_serial(values, order=2, tuple_size=3, op="max")
        assert np.array_equal(out, expected)


class TestLaneKernelContinuation:
    def test_split_points_mid_tile(self, rng):
        order, s, n = 3, 4, 2000
        values = full_range(rng, np.int64, n)
        expected = pass_per_order(values, order, s)
        kernel = LaneKernel("add", np.int64, tuple_size=s, order=order)
        parts, pos = [], 0
        cuts = iter([1, 3, s - 1, s, 17, 64, 301, 5])
        while pos < n:
            step = next(cuts, 129)
            parts.append(np.asarray(
                kernel.feed(values[pos:pos + step].copy())).copy())
            pos += step
        assert np.array_equal(np.concatenate(parts), expected)

    def test_primed_mid_tile_continuation(self, rng):
        # A kernel primed with the (q, s) totals at a mid-stream cut
        # must continue exactly as the unsplit stream — the sharded
        # driver's prime contract at order q.
        order, s, n = 3, 4, 1500
        values = full_range(rng, np.int64, n)
        expected = pass_per_order(values, order, s)
        for cut in (s + 1, 10 * s, 10 * s + 3, n - 2):
            head = LaneKernel("add", np.int64, tuple_size=s, order=order)
            got_head = np.asarray(head.feed(values[:cut].copy())).copy()
            # head.carry is the running (q, s) matrix in global lane order
            tail = LaneKernel(
                "add", np.int64, tuple_size=s, order=order,
                start=cut, prime=np.asarray(head.carry).copy(),
            )
            got_tail = np.asarray(tail.feed(values[cut:].copy())).copy()
            got = np.concatenate([got_head, got_tail])
            assert np.array_equal(got, expected), cut

    def test_matches_pass_per_order_kernel_stream(self, rng):
        # A fused-gated stream and a non-fusable-shaped reference
        # (s == 1 forced per-order) share no kernel path; compare the
        # fused kernel against the serial oracle chunk by chunk.
        order, s = 4, 2
        values = full_range(rng, np.uint32, 777)
        kernel = LaneKernel("add", np.uint32, tuple_size=s, order=order)
        out = np.concatenate([
            np.asarray(kernel.feed(values[:300].copy())).copy(),
            np.asarray(kernel.feed(values[300:301].copy())).copy(),
            np.asarray(kernel.feed(values[301:].copy())).copy(),
        ])
        assert np.array_equal(out, pass_per_order(values, order, s))


class TestFusedCombine:
    def test_splice_equals_unsplit(self, rng):
        order, s = 3, 4
        values = full_range(rng, np.int64, 40 * s)
        cut = 13 * s + 2  # mid-stride: per-lane counts differ
        whole = np.zeros((order, s), dtype=np.int64)
        fused_lane_scan(values.copy(), "add", s, order, whole)

        left = np.zeros((order, s), dtype=np.int64)
        fused_lane_scan(values[:cut].copy(), "add", s, order, left)
        # Right region scanned from zero carry, in its own phase; the
        # sharded splice works in lane order with per-lane counts.
        from repro.kernels import phase_perm

        right = np.zeros((order, s), dtype=np.int64)
        fused_lane_scan(values[cut:].copy(), "add", s, order, right)
        length = values.size - cut
        counts = np.array([
            (length - ((lane - cut) % s) + s - 1) // s for lane in range(s)
        ])
        lane_left = left[:, phase_perm(0, s)]
        lane_right = right[:, phase_perm(cut, s)]
        spliced = fused_combine(lane_left, lane_right, counts)
        assert np.array_equal(spliced, whole[:, phase_perm(0, s)])

    def test_zero_count_lane_passes_prev(self):
        prev = np.arange(6, dtype=np.int64).reshape(3, 2) + 1
        local = np.zeros((3, 2), dtype=np.int64)
        out = fused_combine(prev, local, np.array([0, 0]))
        assert np.array_equal(out, prev)

    def test_weights_are_pascal_rows(self):
        W = fused_weights(5, 3, np.int64, d0=2)
        import math

        for d in range(5):
            for k in range(3):
                assert W[d, k] == math.comb(2 + d + k, k)


class TestFusedAcrossStack:
    @pytest.mark.parametrize("threads", (2, 3, 8))
    def test_threaded_slabs(self, rng, threads):
        order, s = 3, 4
        values = full_range(rng, np.int64, 4099)
        engine = ThreadedScan(threads=threads, cutover_bytes=0)
        out = engine.run(values, order=order, tuple_size=s, op="add").values
        assert np.array_equal(out, pass_per_order(values, order, s))

    def test_session_counts_fused_scans(self, rng):
        order, s = 3, 4
        values = full_range(rng, np.int64, 600)
        session = ScanSession(op="add", order=order, tuple_size=s)
        ref = ScanSession(op="add", order=order, tuple_size=s)
        got = np.concatenate([
            session.feed(values[:250].copy()),
            session.feed(values[250:].copy()),
        ])
        assert np.array_equal(got, pass_per_order(values, order, s))
        assert session.counters.fused_order_scans == 2
        # round-trip through the counter dict keeps the field
        d = session.counters.to_dict()
        assert d["fused_order_scans"] == 2
        assert ref.counters.fused_order_scans == 0

    @pytest.mark.parametrize("shards,workers", ((1, 1), (3, 1), (4, 2)))
    def test_sharded_single_pass(self, rng, tmp_path, shards, workers):
        order, s = 3, 4
        values = full_range(rng, np.int64, 5003)
        input_path = tmp_path / "in.bin"
        output_path = tmp_path / "out.bin"
        values.tofile(input_path)
        result = scan_file_sharded(
            str(input_path), str(output_path), dtype=np.int64, op="add",
            order=order, tuple_size=s, shards=shards, workers=workers,
            chunk_bytes=1 << 10,
        )
        out = np.fromfile(output_path, dtype=np.int64)
        assert np.array_equal(out, pass_per_order(values, order, s))
        # Fused jobs are single-pass over the file.
        assert result.passes == 1
        assert result.counters.fused_order_scans >= shards

    def test_sharded_non_fusable_keeps_passes(self, rng, tmp_path):
        values = rng.integers(-99, 99, 900).astype(np.int64)
        values.tofile(tmp_path / "in.bin")
        result = scan_file_sharded(
            str(tmp_path / "in.bin"), str(tmp_path / "out.bin"),
            dtype=np.int64, op="max", order=2, tuple_size=3,
            shards=2, workers=1, chunk_bytes=1 << 10,
        )
        assert result.passes == 2
        assert result.counters.fused_order_scans == 0
        out = np.fromfile(tmp_path / "out.bin", dtype=np.int64)
        expected = prefix_sum_serial(values, order=2, tuple_size=3, op="max")
        assert np.array_equal(out, expected)

    def test_feed_batch_fused(self, rng):
        from repro.serve.batch import batch_kernel_for, feed_batch

        order, s, B = 3, 4, 4
        batched = [ScanSession(op="add", order=order, tuple_size=s,
                               dtype="int64") for _ in range(B)]
        reference = [ScanSession(op="add", order=order, tuple_size=s,
                                 dtype="int64") for _ in range(B)]
        kernel = batch_kernel_for(batched[0])
        for n in (50, order * s, order * s - 1, 7):  # fused + fallback rounds
            chunks = [full_range(rng, np.int64, n) for _ in range(B)]
            want = [r.feed(c.copy()) for r, c in zip(reference, chunks)]
            got = feed_batch(batched, [c.copy() for c in chunks], kernel)
            for i in range(B):
                assert np.array_equal(got[i], want[i])
                assert np.array_equal(batched[i]._carry, reference[i]._carry)
        # The two long rounds were fused; the short rounds fell back.
        assert all(b.counters.fused_order_scans == 2 for b in batched)

    def test_planner_prices_fused_single_pass(self):
        fused = Workload(nbytes=96 << 20, dtype="int64", op="add",
                         order=3, tuple_size=4, source="file")
        unfused = Workload(nbytes=96 << 20, dtype="int64", op="max",
                           order=3, tuple_size=4, source="file")
        plan_f = plan_scan(fused, store=None)
        plan_u = plan_scan(unfused, store=None)
        assert "pass structure: fused" in plan_f.explain()
        assert "pass structure: pass-per-order" in plan_u.explain()
        # Same geometry, same strategy: the fused workload must be
        # predicted faster than three iterated passes.
        f = {c.label: c.predicted_seconds for c in plan_f.candidates}
        u = {c.label: c.predicted_seconds for c in plan_u.candidates}
        shared = set(f) & set(u)
        assert shared
        assert all(f[label] < u[label] for label in shared)
