"""The shared kernel layer (`repro.kernels`) against the serial oracle.

The kernel layer is the one code path every engine's host side runs
through, so its contract is the strongest in the repo: bit identity
with `repro.reference` across op x dtype x order x tuple_size x
inclusive — including lengths not divisible by the tuple size, chunks
shorter than one stride, empty and 1-element inputs — and split-point
equivalence for the carry-continuation `feed()` API at arbitrary
(mid-tuple) boundaries, in both the in-place integer mode and the
bit-exact float mode.
"""

import numpy as np
import pytest

from repro import kernels
from repro.kernels import LaneKernel
from repro.ops import AssociativeOp, get_op
from repro.reference.serial import prefix_sum_serial

SIZES = [0, 1, 2, 5, 7, 16, 33, 100]
TUPLE_SIZES = [1, 2, 3, 5, 8]


def _data(rng, n, dtype):
    dt = np.dtype(dtype)
    if dt.kind == "f":
        return rng.standard_normal(n).astype(dt)
    lo = 0 if dt.kind == "u" else -50
    return rng.integers(lo, 50, n).astype(dt)


def _assert_bitwise(got, want, msg=""):
    got, want = np.asarray(got), np.asarray(want)
    assert got.dtype == want.dtype, msg
    assert got.tobytes() == want.tobytes(), msg


# -- the grid: scan_into vs the serial reference -------------------------


@pytest.mark.parametrize("opname", ["add", "max", "xor"])
@pytest.mark.parametrize("dtype", ["int32", "int64", "uint32", "float64"])
@pytest.mark.parametrize("tuple_size", TUPLE_SIZES)
def test_scan_into_matches_reference(opname, dtype, tuple_size):
    op = get_op(opname)
    if op.integer_only and np.dtype(dtype).kind == "f":
        pytest.skip("integer-only operator")
    rng = np.random.default_rng(hash((opname, dtype, tuple_size)) % 2**32)
    for n in SIZES:
        values = _data(rng, n, dtype)
        for order in (1, 2, 3):
            for inclusive in (True, False):
                ref = prefix_sum_serial(
                    values, order=order, tuple_size=tuple_size,
                    op=op, inclusive=inclusive,
                )
                got = kernels.scan_into(
                    values, np.empty_like(values), op,
                    order=order, tuple_size=tuple_size, inclusive=inclusive,
                )
                _assert_bitwise(
                    got, ref,
                    f"n={n} order={order} inclusive={inclusive}",
                )


def test_lane_scan_in_place_aliasing():
    op = get_op("add")
    rng = np.random.default_rng(3)
    for s in TUPLE_SIZES:
        for n in SIZES:
            a = _data(rng, n, "int64")
            want = kernels.lane_scan(a, op, s)
            got = a.copy()
            kernels.lane_scan(got, op, s, out=got)
            _assert_bitwise(got, want)


def test_lane_scan_crosses_block_boundaries():
    # Sizes straddling the cache-block row count exercise the blocked
    # integer path's carry splice.
    op = get_op("add")
    rng = np.random.default_rng(4)
    for s in (8, 64):
        rows = kernels.BLOCK_BYTES // (s * 8)
        for n in (rows * s - 1, rows * s, rows * s + 1, 3 * rows * s + 5):
            a = _data(rng, n, "int64")
            ref = prefix_sum_serial(a, tuple_size=s, op=op)
            _assert_bitwise(kernels.lane_scan(a, op, s), ref, f"s={s} n={n}")


# -- feed(): split-point equivalence -------------------------------------


@pytest.mark.parametrize("exact", [False, True])
@pytest.mark.parametrize("tuple_size", [1, 3, 5])
def test_feed_split_equivalence_int(exact, tuple_size):
    op = get_op("add")
    rng = np.random.default_rng(7)
    n = 13
    a = _data(rng, n, "int64")
    one_shot = kernels.lane_scan(a, op, tuple_size)
    # Every two-cut split, including empty parts and mid-tuple edges.
    for cut1 in range(n + 1):
        for cut2 in range(cut1, n + 1):
            kernel = LaneKernel(op, np.int64, tuple_size, exact=exact)
            parts = [
                np.asarray(kernel.feed(part.copy()))
                for part in (a[:cut1], a[cut1:cut2], a[cut2:])
            ]
            _assert_bitwise(
                np.concatenate(parts), one_shot,
                f"exact={exact} s={tuple_size} cuts=({cut1},{cut2})",
            )


@pytest.mark.parametrize("tuple_size", [1, 2, 5])
def test_feed_split_equivalence_float_bit_exact(tuple_size):
    # The exact mode's whole contract: float rounding (and signed
    # zeros) reproduced bit for bit at any split point.
    op = get_op("add")
    rng = np.random.default_rng(11)
    n = 23
    a = rng.standard_normal(n) * 10.0 ** rng.integers(-8, 8, n)
    a[rng.integers(0, n, 4)] = -0.0
    one_shot = kernels.lane_scan(a, op, tuple_size)
    for cut in range(n + 1):
        kernel = LaneKernel(op, np.float64, tuple_size)  # exact=None -> True
        assert kernel.exact
        parts = [np.asarray(kernel.feed(p.copy())) for p in (a[:cut], a[cut:])]
        _assert_bitwise(np.concatenate(parts), one_shot, f"cut={cut}")


def test_feed_primed_continuation():
    op = get_op("add")
    rng = np.random.default_rng(13)
    a = _data(rng, 37, "int64")
    for s in (1, 4):
        for lo in (0, 1, 3, 10):
            reference = LaneKernel(op, np.int64, s, exact=False)
            reference.feed(a[:lo].copy())
            primed = LaneKernel(
                op, np.int64, s, start=lo,
                prime=reference.carry.copy(), exact=False,
            )
            want = reference.feed(a[lo:].copy())
            got = primed.feed(a[lo:].copy())
            _assert_bitwise(got, want, f"s={s} lo={lo}")
            _assert_bitwise(primed.carry, reference.carry)


def test_feed_exact_mode_does_not_mutate_input():
    op = get_op("add")
    a = np.array([1.5, -2.5, 3.5, 4.5, 5.5])
    snapshot = a.copy()
    kernel = LaneKernel(op, np.float64, 2)
    kernel.feed(a)
    kernel.feed(a)
    _assert_bitwise(a, snapshot)


# -- the helper kernels --------------------------------------------------


def test_phase_totals_and_lane_totals():
    op = get_op("add")
    a = np.arange(1, 8, dtype=np.int64)  # n=7
    # s=3, pos=2: phases 0..2 map to lanes 2,0,1
    scanned = kernels.lane_scan(a, op, 3)
    totals = kernels.phase_totals(scanned, 3)
    assert totals.tolist() == [scanned[6], scanned[4], scanned[5]]
    lanes = kernels.lane_totals(scanned, op, 3, pos=2)
    assert lanes.tolist() == [scanned[4], scanned[5], scanned[6]]
    # Short chunk: only the phases with elements are reported.
    assert kernels.phase_totals(a[:2], 3).tolist() == [1, 2]
    short = kernels.lane_totals(a[:2], op, 3, pos=1)
    assert short.tolist() == [0, 1, 2]  # lane 0 absent -> identity
    assert kernels.phase_totals(np.array([], dtype=np.int64), 3).size == 0


def test_fold_lanes_masked_and_broadcast():
    op = get_op("add")
    a = np.ones(10, dtype=np.int64)
    carry = np.array([10, 20, 30], dtype=np.int64)
    full = a.copy()
    kernels.fold_lanes(full, op, carry, pos=1, tuple_size=3)
    # phase p holds lane (1 + p) % 3
    assert full.tolist() == [21, 31, 11, 21, 31, 11, 21, 31, 11, 21]
    masked = a.copy()
    seen = np.array([True, False, True])
    kernels.fold_lanes(masked, op, carry, pos=1, tuple_size=3, seen=seen)
    assert masked.tolist() == [1, 31, 11, 1, 31, 11, 1, 31, 11, 1]


def test_exclusive_shift_heads_and_tail():
    heads = np.array([100, 200], dtype=np.int64)
    incl = np.arange(1, 6, dtype=np.int64)
    out = kernels.exclusive_shift(incl, heads)
    assert out.tolist() == [100, 200, 1, 2, 3]
    short = kernels.exclusive_shift(incl[:1], heads)
    assert short.tolist() == [100]


# -- satellite regression: non-ufunc accumulate with out= ----------------


def _looped_concat_op():
    return AssociativeOp(
        "concat-low-bits",
        fn=lambda a, b: (a * 4 + (b & 3)).astype(a.dtype),
        identity_fn=lambda dt: 0,
        commutative=False,
        integer_only=True,
    )


def test_non_ufunc_accumulate_scans_directly_into_out():
    op = _looped_concat_op()
    a = np.array([1, 2, 3, 1, 2], dtype=np.int64)
    want = op.accumulate(a)
    out = np.empty_like(a)
    got = op.accumulate(a, out=out)
    assert got is out
    _assert_bitwise(out, want)
    _assert_bitwise(a, np.array([1, 2, 3, 1, 2], dtype=np.int64))  # untouched
    aliased = a.copy()
    op.accumulate(aliased, out=aliased)
    _assert_bitwise(aliased, want)


def test_non_ufunc_op_through_the_kernel_layer():
    op = _looped_concat_op()
    rng = np.random.default_rng(17)
    a = rng.integers(0, 4, 11).astype(np.int64)
    for s in (1, 2, 3):
        ref = prefix_sum_serial(a, tuple_size=s, op=op)
        _assert_bitwise(kernels.lane_scan(a, op, s), ref, f"s={s}")


# -- satellite: the strided (non-contiguous view) fast path --------------


@pytest.mark.parametrize("opname", ["add", "max", "xor"])
@pytest.mark.parametrize("tuple_size", [1, 2, 3, 5])
def test_lane_scan_strided_views_match_reference(opname, tuple_size):
    """Uniformly-strided 1-D views take the as_strided matrix path."""
    op = get_op(opname)
    rng = np.random.default_rng(hash((opname, tuple_size)) % 2**32)
    base = rng.integers(-50, 50, 4 * 97 + 1).astype(np.int64)
    views = [
        base[::2],          # stride 2
        base[1::3],         # offset + stride 3
        base[::-1],         # negative stride
        base[::4][::-1],    # composed
    ]
    for view in views:
        src = view.copy()   # contiguous copy = the oracle input
        ref = prefix_sum_serial(src, tuple_size=tuple_size, op=op)
        got = kernels.lane_scan(view, op, tuple_size, out=np.empty_like(src))
        _assert_bitwise(got, ref, f"stride={view.strides}")


def test_lane_scan_strided_in_place_aliasing():
    """``out is src`` on a strided view scans in place through the base."""
    op = get_op("add")
    rng = np.random.default_rng(31)
    base = rng.integers(-50, 50, 200).astype(np.int64)
    keep = base.copy()
    view = base[::2]
    ref = prefix_sum_serial(view.copy(), tuple_size=3, op=op)
    kernels.lane_scan(view, op, 3, out=view)
    _assert_bitwise(view.copy(), ref)
    _assert_bitwise(base[1::2], keep[1::2])  # untouched interleaved half


def test_lane_scan_strided_carry_and_tail():
    op = get_op("add")
    rng = np.random.default_rng(37)
    s = 3
    base = rng.integers(-50, 50, 2 * (7 * s + 2)).astype(np.int64)
    view = base[::2]                       # length 7*s + 2: ragged tail
    carry = rng.integers(-50, 50, s).astype(np.int64)
    want = view.copy()
    for phase in range(s):                 # per-lane oracle
        lane = want[phase::s]
        op.accumulate(lane, out=lane)
        lane += carry[phase]
    got = kernels.lane_scan(view, op, s, out=np.empty(view.shape, view.dtype),
                            carry=carry)
    _assert_bitwise(got, want)


def test_lane_scan_strided_non_ufunc_falls_back_per_lane():
    op = _looped_concat_op()
    rng = np.random.default_rng(41)
    base = rng.integers(0, 4, 46).astype(np.int64)
    view = base[::2]
    ref = prefix_sum_serial(view.copy(), tuple_size=2, op=op)
    got = kernels.lane_scan(view, op, 2, out=np.empty_like(view.copy()))
    _assert_bitwise(got, ref)
