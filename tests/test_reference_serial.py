"""Tests of the serial reference oracle itself, anchored on the paper's
worked examples (Sections 1 and 2.4)."""

import numpy as np
import pytest

from repro.ops import ADD, MAX, XOR
from repro.reference import (
    exclusive_scan_serial,
    higher_order_prefix_sum_serial,
    inclusive_scan_serial,
    prefix_sum_serial,
    tuple_prefix_sum_serial,
)

#: Section 1's running example.
PAPER_INPUT = np.array([1, 2, 3, 4, 5, 2, 4, 6, 8, 10], dtype=np.int32)
PAPER_DIFFS = np.array([1, 1, 1, 1, 1, -3, 2, 2, 2, 2], dtype=np.int32)


class TestPaperExamples:
    def test_prefix_sum_of_differences_recovers_input(self):
        assert np.array_equal(inclusive_scan_serial(PAPER_DIFFS), PAPER_INPUT)

    def test_second_order_decode(self):
        # Section 2.4: the 2nd-order diff sequence of the example input.
        second_order = np.array([1, 0, 0, 0, 0, -4, 5, 0, 0, 0], dtype=np.int32)
        decoded = prefix_sum_serial(second_order, order=2)
        assert np.array_equal(decoded, PAPER_INPUT)


class TestInclusiveScan:
    def test_singleton(self):
        assert np.array_equal(
            inclusive_scan_serial(np.array([7], dtype=np.int32)),
            np.array([7], dtype=np.int32),
        )

    def test_all_ones(self):
        out = inclusive_scan_serial(np.ones(10, dtype=np.int64))
        assert np.array_equal(out, np.arange(1, 11, dtype=np.int64))

    def test_max_scan(self):
        values = np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=np.int32)
        out = inclusive_scan_serial(values, op=MAX)
        assert np.array_equal(out, np.array([3, 3, 4, 4, 5, 9, 9, 9], dtype=np.int32))

    def test_xor_scan_self_cancels(self):
        values = np.array([5, 5, 7, 7], dtype=np.int32)
        out = inclusive_scan_serial(values, op=XOR)
        assert np.array_equal(out, np.array([5, 0, 7, 0], dtype=np.int32))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            inclusive_scan_serial(np.zeros((2, 2), dtype=np.int32))

    def test_int32_wraparound(self):
        values = np.full(3, 2**30, dtype=np.int32)
        out = inclusive_scan_serial(values)
        assert out[2] == np.int32(3 * 2**30 - 2**32)


class TestExclusiveScan:
    def test_basic(self):
        values = np.array([1, 2, 3, 4], dtype=np.int32)
        out = exclusive_scan_serial(values)
        assert np.array_equal(out, np.array([0, 1, 3, 6], dtype=np.int32))

    def test_relates_to_inclusive(self, rng):
        values = rng.integers(-50, 50, 100).astype(np.int64)
        inc = inclusive_scan_serial(values)
        exc = exclusive_scan_serial(values)
        assert np.array_equal(exc[1:], inc[:-1])
        assert exc[0] == 0

    def test_max_exclusive_starts_at_identity(self):
        values = np.array([5, 1], dtype=np.int32)
        out = exclusive_scan_serial(values, op=MAX)
        assert out[0] == np.iinfo(np.int32).min

    def test_tuple_exclusive(self):
        values = np.array([1, 10, 2, 20, 3, 30], dtype=np.int32)
        out = exclusive_scan_serial(values, tuple_size=2)
        assert np.array_equal(out, np.array([0, 0, 1, 10, 3, 30], dtype=np.int32))


class TestTupleScan:
    def test_lanes_are_independent(self):
        values = np.array([1, 100, 2, 200, 3, 300], dtype=np.int32)
        out = inclusive_scan_serial(values, tuple_size=2)
        assert np.array_equal(out, np.array([1, 100, 3, 300, 6, 600], dtype=np.int32))

    def test_strided_equals_reorder_formulation(self, rng):
        for s in (1, 2, 3, 4, 7):
            values = rng.integers(-20, 20, 85).astype(np.int32)
            strided = inclusive_scan_serial(values, tuple_size=s)
            reordered = tuple_prefix_sum_serial(values, tuple_size=s)
            assert np.array_equal(strided, reordered), s

    def test_length_not_multiple_of_tuple(self):
        values = np.array([1, 10, 2, 20, 3], dtype=np.int32)
        out = inclusive_scan_serial(values, tuple_size=2)
        assert np.array_equal(out, np.array([1, 10, 3, 30, 6], dtype=np.int32))

    def test_tuple_larger_than_input_is_copy(self):
        values = np.array([4, 5, 6], dtype=np.int32)
        out = inclusive_scan_serial(values, tuple_size=10)
        assert np.array_equal(out, values)


class TestHigherOrder:
    def test_matches_iterated_first_order(self, rng):
        values = rng.integers(-30, 30, 64).astype(np.int64)
        for q in (1, 2, 3, 5):
            iterated = values
            for _ in range(q):
                iterated = inclusive_scan_serial(iterated)
            assert np.array_equal(
                higher_order_prefix_sum_serial(values, order=q), iterated
            ), q

    def test_order2_of_ones_is_triangular(self):
        values = np.ones(6, dtype=np.int64)
        out = prefix_sum_serial(values, order=2)
        assert np.array_equal(out, np.array([1, 3, 6, 10, 15, 21], dtype=np.int64))

    def test_order3_of_ones_is_tetrahedral(self):
        values = np.ones(5, dtype=np.int64)
        out = prefix_sum_serial(values, order=3)
        assert np.array_equal(out, np.array([1, 4, 10, 20, 35], dtype=np.int64))

    def test_two_implementations_agree(self, rng):
        values = rng.integers(-9, 9, 50).astype(np.int32)
        for q in (1, 2, 4):
            assert np.array_equal(
                prefix_sum_serial(values, order=q),
                higher_order_prefix_sum_serial(values, order=q),
            )


class TestValidation:
    def test_order_zero_rejected(self):
        with pytest.raises(ValueError, match="order"):
            prefix_sum_serial(PAPER_INPUT, order=0)

    def test_tuple_zero_rejected(self):
        with pytest.raises(ValueError, match="tuple_size"):
            prefix_sum_serial(PAPER_INPUT, tuple_size=0)

    def test_exclusive_higher_order_shifts_last_pass_only(self, rng):
        values = rng.integers(-9, 9, 40).astype(np.int32)
        expected = inclusive_scan_serial(values)
        expected = exclusive_scan_serial(expected)
        got = prefix_sum_serial(values, order=2, inclusive=False)
        assert np.array_equal(got, expected)
