"""Tests for the advanced scan applications: segmented quicksort, SpMV,
histograms, string comparison, and summed-area tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import small_sam
from repro.apps import (
    CsrMatrix,
    box_sum,
    first_mismatch,
    histogram,
    histogram_equalization_map,
    longest_common_prefix_lengths,
    quicksort,
    spmv,
    string_compare,
    summed_area_table,
)


class TestQuicksort:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 10, 100, 3000])
    def test_matches_numpy(self, rng, n):
        keys = rng.integers(-(10**6), 10**6, n).astype(np.int64)
        assert np.array_equal(quicksort(keys), np.sort(keys))

    def test_all_equal(self):
        keys = np.full(500, 42, dtype=np.int64)
        assert np.array_equal(quicksort(keys), keys)

    def test_already_sorted_and_reversed(self):
        keys = np.arange(2000, dtype=np.int64)
        assert np.array_equal(quicksort(keys), keys)
        assert np.array_equal(quicksort(keys[::-1].copy()), keys)

    def test_few_distinct_values(self, rng):
        keys = rng.integers(0, 3, 5000).astype(np.int64)
        assert np.array_equal(quicksort(keys), np.sort(keys))

    def test_deterministic_for_seed(self, rng):
        keys = rng.integers(-100, 100, 1000).astype(np.int64)
        assert np.array_equal(quicksort(keys, seed=5), quicksort(keys, seed=5))

    def test_input_not_mutated(self, rng):
        keys = rng.integers(-100, 100, 500).astype(np.int64)
        backup = keys.copy()
        quicksort(keys)
        assert np.array_equal(keys, backup)

    def test_round_budget_falls_back_to_radix(self, rng):
        # With max_rounds=1 the recursion cannot finish; the fallback
        # must still return a correct result.
        keys = rng.integers(-100, 100, 1000).astype(np.int64)
        assert np.array_equal(quicksort(keys, max_rounds=1), np.sort(keys))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            quicksort(np.zeros((2, 2)))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(-(2**40), 2**40), max_size=300))
    def test_property_sorts(self, data):
        keys = np.array(data, dtype=np.int64)
        assert np.array_equal(quicksort(keys), np.sort(keys))


class TestSpmv:
    def test_matches_dense_int(self, rng):
        dense = (rng.integers(-5, 6, (30, 25))
                 * (rng.random((30, 25)) < 0.25)).astype(np.int64)
        x = rng.integers(-10, 10, 25).astype(np.int64)
        matrix = CsrMatrix.from_dense(dense)
        assert np.array_equal(spmv(matrix, x), dense @ x)

    def test_matches_dense_float(self, rng):
        dense = rng.random((12, 9)) * (rng.random((12, 9)) < 0.4)
        x = rng.random(9)
        assert np.allclose(spmv(CsrMatrix.from_dense(dense), x), dense @ x)

    def test_empty_rows(self, rng):
        dense = np.zeros((5, 4), dtype=np.int64)
        dense[1, 2] = 7
        dense[4, 0] = -3
        x = np.array([1, 1, 1, 1], dtype=np.int64)
        assert np.array_equal(spmv(CsrMatrix.from_dense(dense), x), dense @ x)

    def test_all_zero_matrix(self):
        matrix = CsrMatrix.from_dense(np.zeros((3, 3), dtype=np.int64))
        assert np.array_equal(
            spmv(matrix, np.ones(3, dtype=np.int64)), np.zeros(3, dtype=np.int64)
        )

    def test_round_trip_dense(self, rng):
        dense = (rng.integers(-5, 6, (8, 6)) * (rng.random((8, 6)) < 0.5)).astype(np.int32)
        assert np.array_equal(CsrMatrix.from_dense(dense).to_dense(), dense)

    def test_nnz(self, rng):
        dense = np.eye(7, dtype=np.int64)
        assert CsrMatrix.from_dense(dense).nnz == 7

    def test_vector_shape_validation(self):
        matrix = CsrMatrix.from_dense(np.eye(3, dtype=np.int64))
        with pytest.raises(ValueError, match="shape"):
            spmv(matrix, np.ones(4, dtype=np.int64))

    def test_csr_validation(self):
        with pytest.raises(ValueError, match="indptr"):
            CsrMatrix(np.ones(2), np.array([0, 1]), np.array([0, 2]), (3, 2))
        with pytest.raises(ValueError, match="column index"):
            CsrMatrix(np.ones(1), np.array([5]), np.array([0, 1]), (1, 2))


class TestHistogram:
    def test_matches_bincount(self, rng):
        values = rng.integers(0, 64, 20000).astype(np.int32)
        assert np.array_equal(histogram(values, 64), np.bincount(values, minlength=64))

    def test_empty_bins_zero(self):
        counts = histogram(np.array([0, 0, 5], dtype=np.int64), 8)
        assert counts.tolist() == [2, 0, 0, 0, 0, 1, 0, 0]

    def test_empty_input(self):
        assert histogram(np.array([], dtype=np.int32), 4).tolist() == [0, 0, 0, 0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="lie in"):
            histogram(np.array([4]), 4)

    def test_equalization_is_monotone(self, rng):
        values = rng.integers(0, 16, 5000).astype(np.int32)
        remap = histogram_equalization_map(values, 16)
        assert np.all(np.diff(remap) >= 0)
        assert remap.min() >= 0 and remap.max() <= 15

    def test_equalization_spreads_skewed_data(self, rng):
        # Heavily skewed toward low bins: the map should stretch them.
        values = np.clip(rng.integers(0, 4, 5000), 0, 15).astype(np.int32)
        remap = histogram_equalization_map(values, 16)
        assert remap[3] > 3  # low bins pushed upward


class TestStrings:
    def test_first_mismatch(self):
        assert first_mismatch("abc", "abd") == 2
        assert first_mismatch("abc", "xbc") == 0
        assert first_mismatch("abc", "abc") == -1
        assert first_mismatch("abc", "abcd") == -1
        assert first_mismatch("", "x") == -1

    @pytest.mark.parametrize(
        "a,b",
        [("apple", "apricot"), ("", "a"), ("same", "same"), ("zz", "za"),
         ("abc", "abcd"), ("abcd", "abc"), ("0", "00")],
    )
    def test_compare_matches_python(self, a, b):
        expected = (a > b) - (a < b)
        assert string_compare(a, b) == expected

    def test_compare_random(self, rng):
        alphabet = list("abcz")
        for _ in range(50):
            a = "".join(rng.choice(alphabet, size=rng.integers(0, 10)))
            b = "".join(rng.choice(alphabet, size=rng.integers(0, 10)))
            assert string_compare(a, b) == (a > b) - (a < b), (a, b)

    def test_lcp(self):
        lcps = longest_common_prefix_lengths(["abc", "abd", "x", "x"])
        assert lcps.tolist() == [2, 0, 1]

    def test_lcp_empty_list(self):
        assert longest_common_prefix_lengths([]).size == 0


class TestSummedAreaTable:
    def test_matches_double_cumsum(self, rng):
        image = rng.integers(0, 255, (13, 29)).astype(np.int64)
        assert np.array_equal(
            summed_area_table(image), image.cumsum(axis=0).cumsum(axis=1)
        )

    def test_via_tuple_engine(self, rng):
        image = rng.integers(0, 100, (9, 16)).astype(np.int32)
        engine = small_sam(threads_per_block=32, items_per_thread=1)
        assert np.array_equal(
            summed_area_table(image, engine=engine),
            image.cumsum(axis=0).cumsum(axis=1),
        )

    def test_box_sum_matches_slice(self, rng):
        image = rng.integers(-20, 20, (15, 15)).astype(np.int64)
        sat = summed_area_table(image)
        for _ in range(20):
            top, bottom = sorted(rng.integers(0, 15, 2))
            left, right = sorted(rng.integers(0, 15, 2))
            assert box_sum(sat, top, left, bottom, right) == image[
                top : bottom + 1, left : right + 1
            ].sum()

    def test_box_bounds_checked(self, rng):
        sat = summed_area_table(np.ones((4, 4), dtype=np.int64))
        with pytest.raises(ValueError, match="out of bounds"):
            box_sum(sat, 0, 0, 4, 0)

    def test_single_row_and_column(self):
        row = np.arange(6, dtype=np.int64).reshape(1, 6)
        assert np.array_equal(summed_area_table(row), row.cumsum(axis=1))
        col = np.arange(6, dtype=np.int64).reshape(6, 1)
        assert np.array_equal(summed_area_table(col), col.cumsum(axis=0))

    def test_wraparound_int32(self):
        image = np.full((4, 4), 2**30, dtype=np.int32)
        sat = summed_area_table(image)
        with np.errstate(over="ignore"):
            expected = image.cumsum(axis=0, dtype=np.int32).cumsum(axis=1, dtype=np.int32)
        assert np.array_equal(sat, expected)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            summed_area_table(np.arange(5))
