"""Tests for the extra harness renderers (sparklines, CSV)."""

import csv
import io

import pytest

from repro.harness import generate_figure, render_sparklines
from repro.harness.report import figure_to_csv


@pytest.fixture(scope="module")
def fig03():
    return generate_figure("fig03")


class TestSparklines:
    def test_one_line_per_series_plus_header(self, fig03):
        text = render_sparklines(fig03)
        assert len(text.splitlines()) == 1 + len(fig03.values)

    def test_unsupported_sizes_marked(self, fig03):
        text = render_sparklines(fig03)
        cudpp_line = next(l for l in text.splitlines() if "CUDPP" in l)
        assert "-" in cudpp_line

    def test_memcpy_reaches_full_bar(self, fig03):
        text = render_sparklines(fig03)
        memcpy_line = next(l for l in text.splitlines() if "memcpy" in l)
        assert "█" in memcpy_line

    def test_bars_monotone_for_sam(self, fig03):
        # SAM's throughput is monotone in n, so its glyph levels are too.
        levels = " ▁▂▃▄▅▆▇█"
        sam_line = next(l for l in render_sparklines(fig03).splitlines() if l.strip().startswith("SAM"))
        bar = sam_line.split("|")[1]
        ranks = [levels.index(ch) for ch in bar if ch in levels]
        assert ranks == sorted(ranks)


class TestCsv:
    def test_round_trips_through_csv_reader(self, fig03):
        text = figure_to_csv(fig03)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "n"
        assert len(rows) == 1 + len(fig03.sizes)
        assert len(rows[1]) == 1 + len(fig03.values)

    def test_unsupported_cells_empty(self, fig03):
        text = figure_to_csv(fig03)
        rows = list(csv.reader(io.StringIO(text)))
        header = rows[0]
        cudpp_col = header.index("CUDPP")
        big_rows = [row for row in rows[1:] if int(row[0]) > 2**25]
        assert big_rows
        assert all(row[cudpp_col] == "" for row in big_rows)

    def test_values_parse_as_floats(self, fig03):
        text = figure_to_csv(fig03)
        rows = list(csv.reader(io.StringIO(text)))
        sam_col = rows[0].index("SAM")
        values = [float(row[sam_col]) for row in rows[1:] if row[sam_col]]
        assert all(v > 0 for v in values)
        assert values == sorted(values)  # monotone sweep
