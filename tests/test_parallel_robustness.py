"""Fault-injection tests for ``repro.parallel``.

The production claims under test: a worker killed mid-scan degrades to
the bit-identical host path (never partial results, never a hang); a
wedged worker trips the watchdog instead of blocking the caller
forever; and the warm pool transparently heals, so the launch *after*
a failure runs parallel again.
"""

import os
import time

import numpy as np
import pytest

from repro.ops import get_op
from repro.parallel import (
    ParallelSamScan,
    WorkerDeathError,
    WorkerPool,
    WorkerStallError,
)
from repro.reference import prefix_sum_serial

from conftest import make_int_array

N = 4000
CHUNK = 257  # many chunks per worker at this size


def engine(**overrides) -> ParallelSamScan:
    config = dict(
        num_workers=3,
        chunk_elements=CHUNK,
        min_parallel_elements=0,
        stall_timeout=1.0,
    )
    config.update(overrides)
    return ParallelSamScan(**config)


def oracle(values, order=1):
    return prefix_sum_serial(
        values, order=order, tuple_size=1, op=get_op("add"), inclusive=True
    )


class TestWorkerDeath:
    def test_death_falls_back_to_host(self, rng):
        values = make_int_array(rng, N, dtype=np.int64)
        eng = engine(failure_injection={"kind": "die", "worker": 1, "chunk": 0})
        result = eng.run(values, order=2)
        assert result.engine_used == "host"
        assert "died" in result.counters.fallback_reason
        assert np.array_equal(result.values, oracle(values, order=2))

    def test_death_raises_when_asked(self, rng):
        values = make_int_array(rng, N, dtype=np.int64)
        eng = engine(
            fallback="raise",
            failure_injection={"kind": "die", "worker": 0, "chunk": 1},
        )
        with pytest.raises(WorkerDeathError, match="died"):
            eng.run(values, order=2)

    def test_pool_heals_after_death(self, rng):
        values = make_int_array(rng, N, dtype=np.int64)
        eng = engine(failure_injection={"kind": "die", "worker": 2, "chunk": 0})
        assert eng.run(values).engine_used == "host"
        # The very next launch must find a respawned worker and run
        # parallel again — graceful degradation is per-call, not sticky.
        result = engine(fallback="raise").run(values, order=2)
        assert result.engine_used == "parallel"
        assert np.array_equal(result.values, oracle(values, order=2))


class TestWatchdog:
    def test_stall_triggers_watchdog_not_hang(self, rng):
        values = make_int_array(rng, N, dtype=np.int64)
        eng = engine(failure_injection={"kind": "stall", "worker": 2, "chunk": 0})
        start = time.monotonic()
        result = eng.run(values, order=2)
        elapsed = time.monotonic() - start
        assert result.engine_used == "host"
        assert "Stall" in result.counters.fallback_reason
        assert np.array_equal(result.values, oracle(values, order=2))
        # ~stall_timeout (1s) to detect plus bounded abort drain; far
        # below any plausible hang.
        assert elapsed < 10.0

    def test_stall_raises_when_asked(self, rng):
        values = make_int_array(rng, N, dtype=np.int64)
        eng = engine(
            fallback="raise",
            failure_injection={"kind": "stall", "worker": 0, "chunk": 0},
        )
        with pytest.raises(WorkerStallError):
            eng.run(values, order=1)

    def test_healthy_after_stall(self, rng):
        values = make_int_array(rng, N, dtype=np.int64)
        engine(failure_injection={"kind": "stall", "worker": 1, "chunk": 1}).run(values)
        result = engine(fallback="raise").run(values, order=2)
        assert result.engine_used == "parallel"
        assert np.array_equal(result.values, oracle(values, order=2))


class TestPool:
    def test_workers_are_reused_across_launches(self, rng):
        pool = WorkerPool.shared()
        values = make_int_array(rng, N, dtype=np.int64)
        engine(fallback="raise").run(values)
        pids_before = [h.process.pid for h in pool.ensure(3)]
        engine(fallback="raise").run(values)
        pids_after = [h.process.pid for h in pool.ensure(3)]
        assert pids_before == pids_after

    def test_pool_grows_on_demand(self, rng):
        pool = WorkerPool.shared()
        values = make_int_array(rng, 6000, dtype=np.int64)
        result = engine(num_workers=5, fallback="raise").run(values)
        assert result.engine_used == "parallel"
        assert pool.alive_count() >= 5

    def test_private_pool_shutdown(self, rng):
        pool = WorkerPool()
        values = make_int_array(rng, N, dtype=np.int64)
        eng = engine(fallback="raise", pool=pool)
        result = eng.run(values, order=2)
        assert result.engine_used == "parallel"
        assert np.array_equal(result.values, oracle(values, order=2))
        pids = [h.process.pid for h in pool.ensure(3)]
        pool.shutdown()
        assert pool.alive_count() == 0
        for pid in pids:
            # After shutdown the worker processes must actually be gone.
            with pytest.raises(OSError):
                os.kill(pid, 0)
        with pytest.raises(RuntimeError):
            pool.ensure(1)

    def test_workers_are_daemons(self):
        pool = WorkerPool.shared()
        for handle in pool.ensure(2):
            assert handle.process.daemon
