"""Tests for the blocked (random-access, parallel-decode) container."""

import numpy as np
import pytest

from conftest import small_sam
from repro.compression import BlockedDeltaCodec, CodecError, DeltaCodec


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    @pytest.mark.parametrize("n", [0, 1, 100, 1000, 4096, 10001])
    def test_round_trip(self, rng, dtype, n):
        values = rng.integers(-(10**6), 10**6, n).astype(dtype)
        codec = BlockedDeltaCodec(block_elements=1024)
        blob = codec.compress(values)
        assert np.array_equal(codec.decompress(blob), values)

    def test_round_trip_from_raw_bytes(self, rng):
        values = rng.integers(-100, 100, 3000).astype(np.int32)
        codec = BlockedDeltaCodec(block_elements=512)
        data = codec.compress(values).data
        assert np.array_equal(codec.decompress(data), values)

    @pytest.mark.parametrize("tuple_size", [1, 2, 3, 5])
    def test_tuple_sizes(self, rng, tuple_size):
        values = rng.integers(-1000, 1000, 5000).astype(np.int32)
        codec = BlockedDeltaCodec(block_elements=700)
        blob = codec.compress(values, tuple_size=tuple_size)
        assert np.array_equal(codec.decompress(blob), values)

    def test_block_boundaries_align_to_tuples(self, rng):
        values = rng.integers(-10, 10, 1000).astype(np.int32)
        codec = BlockedDeltaCodec(block_elements=100)
        blob = codec.compress(values, tuple_size=3)
        assert blob.block_elements % 3 == 0

    def test_sam_engine_decode(self, rng):
        values = rng.integers(-1000, 1000, 4000).astype(np.int32)
        host_codec = BlockedDeltaCodec(block_elements=1000)
        sam_codec = BlockedDeltaCodec(block_elements=1000, decode_engine=small_sam())
        blob = host_codec.compress(values, order=2)
        assert np.array_equal(sam_codec.decompress(blob), values)


class TestRandomAccess:
    def test_single_block_decode(self, rng):
        values = rng.integers(-100, 100, 5000).astype(np.int32)
        codec = BlockedDeltaCodec(block_elements=1024)
        blob = codec.compress(values)
        for index in range(blob.num_blocks):
            start = index * blob.block_elements
            expected = values[start : start + blob.block_elements]
            assert np.array_equal(codec.decompress_block(blob, index), expected)

    def test_block_index_out_of_range(self, rng):
        codec = BlockedDeltaCodec(block_elements=100)
        blob = codec.compress(rng.integers(0, 10, 250).astype(np.int32))
        assert blob.num_blocks == 3
        with pytest.raises(CodecError, match="out of range"):
            codec.decompress_block(blob, 3)

    def test_offsets_are_exclusive_prefix_sums(self, rng):
        codec = BlockedDeltaCodec(block_elements=128)
        blob = codec.compress(rng.integers(-5, 5, 1000).astype(np.int32))
        offsets = blob.block_offsets()
        sizes = np.asarray(blob.payload_sizes)
        assert np.array_equal(np.diff(offsets), sizes[:-1])
        assert offsets[-1] + sizes[-1] == blob.nbytes


class TestPerBlockAdaptation:
    def test_orders_adapt_to_signal_changes(self, rng):
        # First half: steep linear ramp (order 2 wins); second half:
        # random walk (order 1 wins).
        ramp = (np.arange(4096) * 500).astype(np.int64)
        walk = ramp[-1] + np.cumsum(rng.integers(-3, 4, 4096)).astype(np.int64)
        signal = np.concatenate([ramp, walk])
        codec = BlockedDeltaCodec(block_elements=4096)
        blob = codec.compress(signal)
        assert blob.orders[0] == 2
        assert blob.orders[1] == 1
        assert np.array_equal(codec.decompress(blob), signal)

    def test_explicit_order_overrides(self, rng):
        values = rng.integers(-10, 10, 600).astype(np.int32)
        blob = BlockedDeltaCodec(block_elements=200).compress(values, order=3)
        assert blob.orders == [3, 3, 3]

    def test_blocked_close_to_monolithic_ratio(self, rng):
        t = np.arange(50000)
        smooth = (2000 * np.sin(t / 300.0)).astype(np.int32)
        mono = DeltaCodec().compress(smooth)
        blocked = BlockedDeltaCodec(block_elements=8192).compress(smooth)
        # Restarting the model per block costs only a little.
        assert blocked.nbytes < mono.nbytes * 1.1


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(CodecError, match="bad magic"):
            BlockedDeltaCodec().parse(b"NOPE" + b"\x00" * 24)

    def test_short_buffer(self):
        with pytest.raises(CodecError, match="shorter"):
            BlockedDeltaCodec().parse(b"SA")

    def test_truncated_index(self, rng):
        blob = BlockedDeltaCodec(block_elements=100).compress(
            rng.integers(0, 5, 300).astype(np.int32)
        )
        with pytest.raises(CodecError, match="truncated block index"):
            BlockedDeltaCodec().parse(blob.data[:36])

    def test_payload_length_mismatch(self, rng):
        blob = BlockedDeltaCodec(block_elements=100).compress(
            rng.integers(0, 5, 300).astype(np.int32)
        )
        with pytest.raises(CodecError, match="does not match"):
            BlockedDeltaCodec().parse(blob.data + b"\x00")

    def test_rejects_float(self):
        with pytest.raises(CodecError, match="unsupported dtype"):
            BlockedDeltaCodec().compress(np.zeros(4, dtype=np.float32))

    def test_rejects_bad_block_elements(self):
        with pytest.raises(CodecError, match="block_elements"):
            BlockedDeltaCodec(block_elements=0)
