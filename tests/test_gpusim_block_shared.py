"""Unit tests for shared memory and the block-level three-phase scan."""

import numpy as np
import pytest

from repro.gpusim.block import BlockContext
from repro.gpusim.errors import MemoryFault
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.sharedmem import SharedMemory
from repro.gpusim.spec import TITAN_X
from repro.ops import ADD, MAX
from repro.reference import inclusive_scan_serial


class TestSharedMemory:
    def test_alloc_and_round_trip(self):
        shared = SharedMemory(1024)
        shared.alloc("buf", 32, np.int32)
        shared.store("buf", np.arange(4), np.arange(4))
        assert np.array_equal(shared.load("buf", np.arange(4)), np.arange(4))

    def test_capacity_enforced(self):
        shared = SharedMemory(64)
        shared.alloc("a", 8, np.int64)  # exactly 64 bytes
        with pytest.raises(MemoryFault, match="exhausted"):
            shared.alloc("b", 1, np.int8)

    def test_duplicate_name(self):
        shared = SharedMemory(1024)
        shared.alloc("a", 4, np.int32)
        with pytest.raises(MemoryFault, match="already allocated"):
            shared.alloc("a", 4, np.int32)

    def test_alloc_or_get_reuses(self):
        shared = SharedMemory(1024)
        first = shared.alloc_or_get("a", 8, np.int32)
        second = shared.alloc_or_get("a", 8, np.int32)
        assert first is second
        assert shared.used_bytes == 32

    def test_alloc_or_get_rejects_incompatible(self):
        shared = SharedMemory(1024)
        shared.alloc_or_get("a", 8, np.int32)
        with pytest.raises(MemoryFault, match="incompatible"):
            shared.alloc_or_get("a", 16, np.int32)

    def test_out_of_bounds(self):
        shared = SharedMemory(1024)
        shared.alloc("a", 4, np.int32)
        with pytest.raises(MemoryFault, match="out of bounds"):
            shared.load("a", np.array([4]))

    def test_unknown_array(self):
        shared = SharedMemory(1024)
        with pytest.raises(MemoryFault, match="no shared array"):
            shared.load("ghost", np.array([0]))


class TestBankConflicts:
    def test_distinct_banks_no_conflict(self):
        shared = SharedMemory(8192)
        shared.alloc("a", 64, np.int32)
        shared.load("a", np.arange(32))
        assert shared.stats.shared_bank_conflicts == 0

    def test_same_bank_distinct_addresses_conflict(self):
        shared = SharedMemory(8192)
        shared.alloc("a", 32 * 4, np.int32)
        # Stride 32: every lane hits bank 0 at a different address.
        shared.load("a", np.arange(4) * 32)
        assert shared.stats.shared_bank_conflicts == 3

    def test_broadcast_same_address_free(self):
        shared = SharedMemory(8192)
        shared.alloc("a", 32, np.int32)
        shared.load("a", np.zeros(32, dtype=np.int64))
        assert shared.stats.shared_bank_conflicts == 0


def make_ctx(threads_per_block=64):
    gmem = GlobalMemory()
    return BlockContext(0, 1, TITAN_X, gmem, threads_per_block=threads_per_block)


class TestBlockContext:
    def test_warp_count(self):
        ctx = make_ctx(128)
        assert ctx.num_warps == 4

    def test_threads_must_be_warp_multiple(self):
        gmem = GlobalMemory()
        with pytest.raises(ValueError, match="multiple"):
            BlockContext(0, 1, TITAN_X, gmem, threads_per_block=48)

    def test_syncthreads_counted(self):
        ctx = make_ctx()
        ctx.syncthreads()
        assert ctx.stats.barriers == 1

    def test_threadfence_counted(self):
        ctx = make_ctx()
        ctx.threadfence()
        assert ctx.stats.fences == 1


class TestBlockScan:
    @pytest.mark.parametrize("threads", [32, 64, 256, 1024])
    def test_matches_serial(self, rng, threads):
        ctx = make_ctx(threads)
        values = rng.integers(-50, 50, threads).astype(np.int32)
        out = ctx.block_inclusive_scan(values, ADD)
        assert np.array_equal(out, inclusive_scan_serial(values))

    def test_max_operator(self, rng):
        ctx = make_ctx(128)
        values = rng.integers(-50, 50, 128).astype(np.int64)
        out = ctx.block_inclusive_scan(values, MAX)
        assert np.array_equal(out, inclusive_scan_serial(values, op=MAX))

    def test_three_phase_structure(self):
        # Two barriers per block scan (Section 2.1's phases).
        ctx = make_ctx(64)
        ctx.block_inclusive_scan(np.ones(64, dtype=np.int32), ADD)
        assert ctx.stats.barriers == 2
        # Phase 1: 2 warp scans (5 shuffles each); phase 2: 1 aux warp
        # scan; plus no others.
        assert ctx.stats.shuffles == 15

    def test_wrong_size_rejected(self):
        ctx = make_ctx(64)
        with pytest.raises(ValueError, match="lane values"):
            ctx.block_inclusive_scan(np.ones(32, dtype=np.int32), ADD)

    def test_reusable_across_calls(self, rng):
        ctx = make_ctx(64)
        for _ in range(3):
            values = rng.integers(-5, 5, 64).astype(np.int32)
            out = ctx.block_inclusive_scan(values, ADD)
            assert np.array_equal(out, inclusive_scan_serial(values))
