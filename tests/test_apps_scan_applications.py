"""Tests for the classic scan applications (compaction, RLE, sort,
recurrences, polynomial evaluation, parallel FSM/lexer)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import small_sam
from repro.apps import (
    FsmScanner,
    compact_indices,
    linear_recurrence,
    parallel_fsm_run,
    polynomial_evaluate_prefixes,
    radix_sort,
    radix_sort_with_indices,
    rle_decode,
    rle_encode,
    simple_lexer,
    stream_compact,
)


class TestStreamCompaction:
    def test_basic(self):
        values = np.array([5, 6, 7, 8])
        mask = np.array([1, 0, 0, 1], dtype=bool)
        assert stream_compact(values, mask).tolist() == [5, 8]

    def test_matches_boolean_indexing(self, rng):
        values = rng.integers(-100, 100, 5000)
        mask = rng.random(5000) < 0.3
        assert np.array_equal(stream_compact(values, mask), values[mask])

    def test_through_sam_engine(self, rng):
        values = rng.integers(0, 100, 2000)
        mask = values % 7 == 0
        got = stream_compact(values, mask, engine=small_sam())
        assert np.array_equal(got, values[mask])

    def test_all_kept_and_none_kept(self, rng):
        values = rng.integers(0, 10, 100)
        assert np.array_equal(
            stream_compact(values, np.ones(100, bool)), values
        )
        assert stream_compact(values, np.zeros(100, bool)).size == 0

    def test_empty(self):
        assert stream_compact(np.array([]), np.array([], dtype=bool)).size == 0

    def test_compact_indices_are_exclusive_scan(self):
        mask = np.array([1, 0, 1, 1, 0], dtype=bool)
        assert compact_indices(mask).tolist() == [0, 1, 1, 2, 3]

    def test_validation(self):
        with pytest.raises(ValueError, match="aligned"):
            stream_compact(np.zeros(3), np.zeros(4, dtype=bool))


class TestRle:
    def test_paper_style_example(self):
        vals, lens = rle_encode(np.array([7, 7, 7, 2, 2, 9]))
        assert vals.tolist() == [7, 2, 9]
        assert lens.tolist() == [3, 2, 1]

    def test_round_trip_random(self, rng):
        values = rng.integers(0, 5, 3000)
        vals, lens = rle_encode(values)
        assert np.array_equal(rle_decode(vals, lens), values)

    def test_single_run(self):
        vals, lens = rle_encode(np.full(10, 3))
        assert vals.tolist() == [3] and lens.tolist() == [10]

    def test_no_runs(self, rng):
        values = np.arange(50)
        vals, lens = rle_encode(values)
        assert np.array_equal(vals, values)
        assert np.all(lens == 1)

    def test_empty(self):
        vals, lens = rle_encode(np.array([], dtype=np.int32))
        assert vals.size == 0 and lens.size == 0
        assert rle_decode(vals, lens).size == 0

    def test_decode_with_zero_length_runs(self):
        out = rle_decode(np.array([1, 2, 3]), np.array([2, 0, 3]))
        assert out.tolist() == [1, 1, 3, 3, 3]

    def test_decode_leading_empty_run(self):
        out = rle_decode(np.array([9, 4]), np.array([0, 2]))
        assert out.tolist() == [4, 4]

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            rle_decode(np.array([1]), np.array([-1]))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 3), max_size=300))
    def test_property_round_trip(self, data):
        values = np.array(data, dtype=np.int64)
        vals, lens = rle_encode(values)
        assert np.array_equal(rle_decode(vals, lens), values)
        # canonical form: no two adjacent runs share a value
        if len(vals) > 1:
            assert np.all(vals[1:] != vals[:-1])


class TestRadixSort:
    @pytest.mark.parametrize("dtype", [np.int32, np.int64, np.uint32, np.uint64])
    def test_matches_numpy_sort(self, rng, dtype):
        info = np.iinfo(dtype)
        keys = rng.integers(
            int(info.min), int(info.max),
            4000,
            dtype=np.int64 if np.dtype(dtype).kind == "i" else np.uint64,
        ).astype(dtype)
        assert np.array_equal(radix_sort(keys), np.sort(keys))

    def test_permutation_is_argsort(self, rng):
        keys = rng.integers(-1000, 1000, 2000).astype(np.int32)
        sorted_keys, perm = radix_sort_with_indices(keys)
        assert np.array_equal(keys[perm], sorted_keys)

    def test_zero_middle_byte_does_not_end_the_sort_early(self):
        # Regression: a pass whose digits are all zero must not end the
        # sort while *higher* bytes still differ (-65281 = 0x...FF00FF
        # has a zero byte 1, but bytes 2-3 still order the keys).
        keys = np.array([0, -65281], dtype=np.int32)
        assert np.array_equal(radix_sort(keys), np.sort(keys))
        keys = np.array([1 << 24, 255, 0, -(1 << 24)], dtype=np.int32)
        assert np.array_equal(radix_sort(keys), np.sort(keys))

    def test_stability(self):
        # Keys with ties: the permutation must preserve input order.
        keys = np.array([3, 1, 3, 1, 3], dtype=np.int32)
        _, perm = radix_sort_with_indices(keys)
        # Among equal keys, original positions must stay in order.
        sorted_keys = keys[perm]
        for value in (1, 3):
            positions = perm[sorted_keys == value]
            assert list(positions) == sorted(positions)

    def test_empty_and_singleton(self):
        assert radix_sort(np.array([], dtype=np.int32)).size == 0
        assert radix_sort(np.array([5], dtype=np.int64)).tolist() == [5]

    def test_already_sorted(self):
        keys = np.arange(1000, dtype=np.int32)
        assert np.array_equal(radix_sort(keys), keys)

    def test_negative_heavy(self, rng):
        keys = -rng.integers(0, 10**9, 3000).astype(np.int64)
        assert np.array_equal(radix_sort(keys), np.sort(keys))

    def test_rejects_floats(self):
        with pytest.raises(TypeError, match="integers"):
            radix_sort(np.array([1.5, 2.5]))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(-(2**31), 2**31 - 1), max_size=200))
    def test_property_sorts(self, data):
        keys = np.array(data, dtype=np.int32)
        assert np.array_equal(radix_sort(keys), np.sort(keys))


class TestLinearRecurrence:
    def _serial(self, a, b, y0):
        out = np.empty(len(a), dtype=np.result_type(a.dtype, b.dtype))
        prev = out.dtype.type(y0)
        with np.errstate(over="ignore"):
            for i in range(len(a)):
                out[i] = a[i] * prev + b[i]
                prev = out[i]
        return out

    def test_prefix_sum_special_case(self, rng):
        b = rng.integers(-100, 100, 500).astype(np.int64)
        a = np.ones(500, dtype=np.int64)
        from repro.reference import inclusive_scan_serial

        assert np.array_equal(linear_recurrence(a, b), inclusive_scan_serial(b))

    @pytest.mark.parametrize("y0", [0, 1, -7])
    def test_matches_serial_ints(self, rng, y0):
        a = rng.integers(-3, 4, 300).astype(np.int64)
        b = rng.integers(-9, 10, 300).astype(np.int64)
        assert np.array_equal(linear_recurrence(a, b, y0=y0), self._serial(a, b, y0))

    def test_matches_serial_floats(self, rng):
        a = rng.random(200) * 0.9
        b = rng.random(200)
        assert np.allclose(linear_recurrence(a, b), self._serial(a, b, 0.0))

    def test_wraparound_exact(self, rng):
        a = rng.integers(-1000, 1000, 100).astype(np.int32)
        b = rng.integers(-1000, 1000, 100).astype(np.int32)
        assert np.array_equal(linear_recurrence(a, b), self._serial(a, b, 0))

    def test_iir_filter_decay(self):
        # y[i] = 0.5 y[i-1] + 1 converges to 2.
        a = np.full(60, 0.5)
        b = np.ones(60)
        out = linear_recurrence(a, b)
        assert abs(out[-1] - 2.0) < 1e-12

    def test_validation(self):
        with pytest.raises(ValueError, match="aligned"):
            linear_recurrence(np.ones(3), np.ones(4))

    def test_empty(self):
        out = linear_recurrence(np.ones(0), np.ones(0))
        assert out.size == 0


class TestPolynomial:
    def test_known_value(self):
        # 2x^2 + 3x + 4 at x=10.
        out = polynomial_evaluate_prefixes(np.array([2, 3, 4], dtype=np.int64), 10)
        assert out.tolist() == [2, 23, 234]

    def test_matches_polyval(self, rng):
        coeffs = rng.integers(-5, 6, 20).astype(np.int64)
        x = 3
        out = polynomial_evaluate_prefixes(coeffs, x)
        assert out[-1] == np.polyval(coeffs, x)

    def test_float_polynomial(self, rng):
        coeffs = rng.random(15)
        out = polynomial_evaluate_prefixes(coeffs, 0.5)
        assert np.isclose(out[-1], np.polyval(coeffs, 0.5))

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            polynomial_evaluate_prefixes(np.array([]), 2)


class TestFsm:
    def test_matches_serial_automaton(self, rng):
        num_states, num_symbols = 5, 4
        transition = rng.integers(0, num_states, (num_states, num_symbols)).astype(np.int8)
        symbols = rng.integers(0, num_symbols, 1000)
        parallel = parallel_fsm_run(transition, symbols, start_state=2)
        state = 2
        serial = []
        for symbol in symbols:
            state = transition[state, symbol]
            serial.append(state)
        assert np.array_equal(parallel, serial)

    def test_empty_input(self):
        transition = np.zeros((2, 2), dtype=np.int8)
        assert parallel_fsm_run(transition, np.array([], dtype=np.int64)).size == 0

    def test_symbol_out_of_range(self):
        transition = np.zeros((2, 2), dtype=np.int8)
        with pytest.raises(ValueError, match="out of range"):
            parallel_fsm_run(transition, np.array([2]))

    def test_bad_start_state(self):
        transition = np.zeros((2, 2), dtype=np.int8)
        with pytest.raises(ValueError, match="start_state"):
            parallel_fsm_run(transition, np.array([0]), start_state=5)


class TestLexer:
    def test_simple_program(self):
        tokens = simple_lexer("x1 = 42;")
        assert tokens == [
            ("ident", "x1"),
            ("punct", "="),
            ("number", "42"),
            ("punct", ";"),
        ]

    def test_identifier_with_digits(self):
        assert simple_lexer("a1b2") == [("ident", "a1b2")]

    def test_number_then_identifier(self):
        assert simple_lexer("42x") == [("number", "42"), ("ident", "x")]

    def test_adjacent_punctuation(self):
        assert simple_lexer(";;") == [("punct", ";"), ("punct", ";")]

    def test_whitespace_only(self):
        assert simple_lexer("  \t\n ") == []

    def test_empty(self):
        assert simple_lexer("") == []

    def test_token_positions(self):
        tokens = FsmScanner().tokenize("ab 12")
        assert (tokens[0].start, tokens[0].end) == (0, 2)
        assert (tokens[1].start, tokens[1].end) == (3, 5)

    def test_matches_reference_regex_lexer(self, rng):
        import re

        alphabet = "ab1 ;+"
        text = "".join(rng.choice(list(alphabet), size=300))
        expected = [
            ("ident" if m.group(1) else "number" if m.group(2) else "punct",
             m.group(0))
            for m in re.finditer(r"([a-z_][a-z_0-9]*)|(\d+)|([^\sa-z_0-9])", text)
        ]
        assert simple_lexer(text) == expected
