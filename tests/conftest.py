"""Shared fixtures and helpers for the test suite.

Simulator-backed tests use deliberately tiny blocks (32-128 threads)
and small persistent-block counts so that inputs of a few thousand
elements still produce many chunks per block — exercising the full
inter-block protocol — while keeping the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sam import SamScan
from repro.gpusim.spec import TITAN_X


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_int_array(rng, n, dtype=np.int32, lo=-1000, hi=1000):
    """Random integers, dtype-cast (values wrap as they would on GPU)."""
    return rng.integers(lo, hi, size=n).astype(dtype)


def small_sam(**overrides) -> SamScan:
    """A SAM engine sized for fast fine-grained tests."""
    config = dict(
        spec=TITAN_X,
        threads_per_block=64,
        items_per_thread=2,
        num_blocks=4,
    )
    config.update(overrides)
    return SamScan(**config)


#: Sizes that probe boundaries: empty-adjacent, sub-warp, warp, block,
#: chunk, multi-chunk, non-powers-of-two, and a prime.
BOUNDARY_SIZES = (1, 2, 31, 32, 33, 63, 64, 65, 127, 128, 129, 1000, 4096, 4097, 5003)
