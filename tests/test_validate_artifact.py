"""The artifact-validation script must stay green (it is the repo's
one-command smoke check, mirroring the paper's AEC artifact)."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))

import validate_artifact  # noqa: E402


def test_validate_artifact_passes(capsys):
    assert validate_artifact.main() == 0
    out = capsys.readouterr().out
    assert "ALL CHECKS PASS" in out
    assert "FAIL" not in out
