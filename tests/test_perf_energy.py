"""Tests for the energy-model extension (paper §6 future work)."""

import pytest

from repro.perf.energy import ENERGY_CONSTANTS, EnergyModel


@pytest.fixture(scope="module")
def model():
    return EnergyModel()


class TestEnergyModel:
    def test_energy_positive_and_increasing_in_n(self, model):
        energies = [
            model.energy_joules("sam", "Titan X", 32, 2**e) for e in range(12, 28, 4)
        ]
        assert all(e > 0 for e in energies)
        assert energies == sorted(energies)

    def test_per_item_energy_falls_with_n(self, model):
        # Fixed overheads amortize: nJ/item decreases toward saturation.
        small = model.nanojoules_per_item("sam", "Titan X", 32, 2**14)
        large = model.nanojoules_per_item("sam", "Titan X", 32, 2**27)
        assert large < small

    def test_64bit_costs_more_per_item(self, model):
        e32 = model.nanojoules_per_item("sam", "Titan X", 32, 2**26)
        e64 = model.nanojoules_per_item("sam", "Titan X", 64, 2**26)
        assert e64 > e32

    def test_4n_traffic_costs_more_than_2n(self, model):
        sam = model.nanojoules_per_item("sam", "Titan X", 32, 2**26)
        thrust = model.nanojoules_per_item("thrust", "Titan X", 32, 2**26)
        assert thrust > 1.4 * sam

    def test_higher_order_energy_gap_grows(self, model):
        ratios = [
            model.nanojoules_per_item("cub", "Titan X", 32, 2**27, order=q)
            / model.nanojoules_per_item("sam", "Titan X", 32, 2**27, order=q)
            for q in (1, 2, 5, 8)
        ]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 1.5

    def test_unknown_gpu(self, model):
        with pytest.raises(KeyError, match="energy constants"):
            model.energy_joules("sam", "H100", 32, 1000)

    def test_both_testbed_gpus_covered(self):
        assert set(ENERGY_CONSTANTS) == {"Titan X", "K40"}

    def test_k40_less_efficient_than_titan_x(self, model):
        # Older process + slower kernel: more J per item.
        k40 = model.nanojoules_per_item("sam", "K40", 32, 2**26)
        titan = model.nanojoules_per_item("sam", "Titan X", 32, 2**26)
        assert k40 > titan
