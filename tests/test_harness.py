"""Tests for the figure/table harness."""

import pytest

from repro.harness import (
    FIGURES,
    format_figure,
    format_table1,
    generate_figure,
    power_of_ten_sizes,
    power_of_two_sizes,
    run_headline_checks,
    table1_rows,
)
from repro.harness.figures import MAX_ITEMS, standard_sizes


class TestSizeRules:
    def test_32bit_sizes(self):
        sizes = power_of_two_sizes(32)
        assert sizes[0] == 2**10 and sizes[-1] == 2**30

    def test_64bit_capped_at_2_29(self):
        # "none of the tested codes support input sizes above 4 GB".
        assert power_of_two_sizes(64)[-1] == 2**29

    def test_power_of_ten(self):
        assert power_of_ten_sizes(32) == [10**e for e in range(3, 10)]
        assert power_of_ten_sizes(64)[-1] == 10**8

    def test_standard_sizes_sorted_unique(self):
        sizes = standard_sizes(32)
        assert sizes == sorted(set(sizes))
        assert max(sizes) <= MAX_ITEMS[32]


class TestFigureSpecs:
    def test_all_fourteen_figures_defined(self):
        assert sorted(FIGURES) == [f"fig{i:02d}" for i in range(3, 17)]

    def test_conventional_figures_have_five_series(self):
        assert len(FIGURES["fig03"].series) == 5

    def test_order_figures_sweep_2_5_8(self):
        orders = sorted({s.order for s in FIGURES["fig07"].series})
        assert orders == [2, 5, 8]

    def test_tuple_figures_sweep_2_5_8(self):
        tuples = sorted({s.tuple_size for s in FIGURES["fig11"].series})
        assert tuples == [2, 5, 8]

    def test_carry_figures_compare_two_schemes(self):
        labels = [s.label for s in FIGURES["fig15"].series]
        assert labels == ["chained", "SAM"]

    def test_gpu_assignment(self):
        assert FIGURES["fig03"].gpu == "Titan X"
        assert FIGURES["fig05"].gpu == "K40"
        assert FIGURES["fig16"].gpu == "K40"

    def test_word_bits(self):
        assert FIGURES["fig04"].word_bits == 64
        assert FIGURES["fig13"].word_bits == 32


class TestGeneration:
    def test_generate_unknown_figure(self):
        with pytest.raises(KeyError, match="unknown figure"):
            generate_figure("fig99")

    @pytest.mark.parametrize("fig_id", sorted(FIGURES))
    def test_generates_full_series(self, fig_id):
        data = generate_figure(fig_id)
        assert len(data.sizes) > 10
        for label, values in data.values.items():
            assert len(values) == len(data.sizes)
            supported = [v for v in values if v is not None]
            assert supported, label
            assert all(v > 0 for v in supported)

    def test_cudpp_has_missing_points(self):
        data = generate_figure("fig03")
        assert None in data.values["CUDPP"]
        assert None not in data.values["SAM"]


class TestReport:
    def test_format_figure_contains_rows(self):
        text = format_figure(generate_figure("fig03"))
        assert "2^10" in text and "2^30" in text and "10^6" in text
        assert "SAM" in text and "memcpy" in text
        assert "-" in text  # CUDPP's unsupported sizes

    def test_format_table1(self):
        text = format_table1()
        assert "C1060" in text and "7.32" in text
        assert "Titan X" in text and "1.46" in text

    def test_table1_rows_match_paper(self):
        for row in table1_rows():
            assert row["af_x1000"] == pytest.approx(row["paper_af_x1000"], abs=0.02)


class TestHeadlineRunner:
    def test_all_pass_and_reported(self):
        results = run_headline_checks()
        assert len(results) >= 35
        failed = [r for r in results if not r["passed"]]
        assert not failed, failed
        for r in results:
            assert r["measured"]
            assert r["paper_claim"]
