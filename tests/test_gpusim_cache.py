"""Tests for the L2 cache model and the paper's §5.1 locality claim."""

import numpy as np
import pytest

from repro.baselines import DecoupledLookbackScan
from repro.core import SamScan
from repro.gpusim.cache import L2Cache
from repro.gpusim.memory import GlobalMemory


class TestL2Cache:
    def test_cold_miss_then_hit(self):
        cache = L2Cache(16 * 1024)
        assert cache.access("a", [0]) == (0, 1)
        assert cache.access("a", [0]) == (1, 0)
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_arrays_distinct_lines(self):
        cache = L2Cache(16 * 1024)
        cache.access("a", [0])
        hits, misses = cache.access("b", [0])
        assert (hits, misses) == (0, 1)

    def test_lru_eviction_within_set(self):
        # Direct-mapped-ish: 1 set, 2 ways.
        cache = L2Cache(256, line_bytes=128, associativity=2)
        cache.access("a", [0])
        cache.access("a", [1])
        cache.access("a", [2])  # evicts line 0 (LRU)
        assert cache.access("a", [0]) == (0, 1)

    def test_touch_refreshes_lru(self):
        cache = L2Cache(256, line_bytes=128, associativity=2)
        cache.access("a", [0])
        cache.access("a", [1])
        cache.access("a", [0])  # refresh 0
        cache.access("a", [2])  # now evicts 1
        assert cache.access("a", [0]) == (1, 0)
        assert cache.access("a", [1]) == (0, 1)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError, match="cannot hold"):
            L2Cache(128, line_bytes=128, associativity=16)

    def test_hit_rate_helpers(self):
        cache = L2Cache(16 * 1024)
        cache.access("a", [0, 1])
        cache.access("a", [0, 1])
        assert cache.hit_rate() == 0.5
        assert cache.hit_rate("a") == 0.5
        assert cache.hit_rate("ghost") == 0.0
        assert cache.per_array_stats() == {"a": (2, 2)}


class TestMemoryIntegration:
    def test_counters_update_through_global_memory(self):
        gmem = GlobalMemory(l2=L2Cache(16 * 1024))
        array = gmem.alloc("a", 64, np.int32)
        gmem.load(array, np.arange(32))
        gmem.load(array, np.arange(32))
        assert gmem.stats.l2_misses == 1
        assert gmem.stats.l2_hits == 1

    def test_no_cache_no_counters(self):
        gmem = GlobalMemory()
        array = gmem.alloc("a", 64, np.int32)
        gmem.load(array, np.arange(32))
        assert gmem.stats.l2_hits == 0 and gmem.stats.l2_misses == 0


class TestSection51LocalityClaim:
    """"O(1) sized circular buffers result in better locality and thus
    more cache hits" — measured, not modeled."""

    @staticmethod
    def _aux_misses(result, keys):
        misses = 0
        for name, (_, m) in result.l2.per_array_stats().items():
            if any(key in name for key in keys):
                misses += m
        return misses

    def _run(self, n):
        values = np.random.default_rng(0).integers(-100, 100, n).astype(np.int32)
        sam = SamScan(
            threads_per_block=64, items_per_thread=1, num_blocks=8, l2_bytes=8192
        ).run(values)
        cub = DecoupledLookbackScan(
            threads_per_block=64, items_per_thread=1, l2_bytes=8192
        ).run(values)
        return sam, cub

    def test_sam_aux_misses_constant_in_n(self):
        sam_small, _ = self._run(16384)
        sam_large, _ = self._run(65536)
        small = self._aux_misses(sam_small, ("sam_sums", "sam_flags"))
        large = self._aux_misses(sam_large, ("sam_sums", "sam_flags"))
        # Compulsory misses on a handful of circular-buffer lines only.
        assert large <= small + 2
        assert large <= 8

    def test_lookback_aux_misses_grow_with_n(self):
        _, cub_small = self._run(16384)
        _, cub_large = self._run(65536)
        small = self._aux_misses(cub_small, ("status", "agg", "prefix"))
        large = self._aux_misses(cub_large, ("status", "agg", "prefix"))
        # One compulsory miss per aux line, and lines scale with tiles.
        assert large >= 3 * small

    def test_sam_aux_hit_rate_higher(self):
        sam, cub = self._run(65536)
        def rate(result, keys):
            hits = misses = 0
            for name, (h, m) in result.l2.per_array_stats().items():
                if any(key in name for key in keys):
                    hits += h
                    misses += m
            return hits / (hits + misses)

        assert rate(sam, ("sam_sums", "sam_flags")) > rate(
            cub, ("status", "agg", "prefix")
        )

    def test_data_arrays_stream_for_everyone(self):
        sam, cub = self._run(65536)
        for result, keys in ((sam, ("sam_in", "sam_out")), (cub, ("buf",))):
            for name, (hits, _) in result.l2.per_array_stats().items():
                if any(key in name for key in keys):
                    assert hits == 0  # pure streaming: no reuse
