"""Correctness tests for ``repro.parallel`` — the real shared-memory
multicore SAM engine.

The engine must be bit-identical to the serial reference for every
operator, integer dtype, order, and tuple size; independent of worker
count, chunk geometry, and timing; and must degrade to the host path
(never partial results) on inputs too small to parallelize.
"""

import numpy as np
import pytest

import repro
from repro.ops import AssociativeOp, get_op
from repro.parallel import (
    DEFAULT_MIN_PARALLEL_ELEMENTS,
    ParallelSamScan,
)
from repro.reference import prefix_sum_serial

from conftest import BOUNDARY_SIZES, make_int_array


def strict_engine(**overrides) -> ParallelSamScan:
    """An engine that must actually run in parallel (no degradation):
    small chunks so modest inputs still span many chunks per worker."""
    config = dict(
        num_workers=3,
        chunk_elements=257,
        min_parallel_elements=0,
        fallback="raise",
    )
    config.update(overrides)
    return ParallelSamScan(**config)


def oracle(values, order=1, tuple_size=1, op="add", inclusive=True):
    return prefix_sum_serial(
        values, order=order, tuple_size=tuple_size,
        op=get_op(op), inclusive=inclusive,
    )


class TestOracleAgreement:
    def test_boundary_sizes(self, rng):
        engine = strict_engine()
        for n in BOUNDARY_SIZES:
            values = make_int_array(rng, n, dtype=np.int64)
            result = engine.run(values, order=2, tuple_size=3)
            assert np.array_equal(
                result.values, oracle(values, order=2, tuple_size=3)
            ), f"n={n}"

    @pytest.mark.parametrize("op", ["add", "max", "min", "xor", "and", "or"])
    def test_operators(self, rng, op):
        engine = strict_engine()
        values = make_int_array(rng, 3000, dtype=np.int64)
        for inclusive in (True, False):
            result = engine.run(values, op=op, inclusive=inclusive)
            assert np.array_equal(
                result.values, oracle(values, op=op, inclusive=inclusive)
            )

    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    @pytest.mark.parametrize("tuple_size", [1, 2, 5])
    def test_orders_and_tuples(self, rng, order, tuple_size):
        engine = strict_engine()
        values = make_int_array(rng, 2500, dtype=np.int64, lo=-50, hi=50)
        result = engine.run(values, order=order, tuple_size=tuple_size)
        assert np.array_equal(
            result.values, oracle(values, order=order, tuple_size=tuple_size)
        )

    @pytest.mark.parametrize("dtype", [np.int32, np.uint32, np.int64, np.uint64])
    def test_wraparound_dtypes(self, rng, dtype):
        # Full-range values force intermediate overflow; modular
        # arithmetic must make all engines agree bit for bit.
        info = np.iinfo(dtype)
        values = rng.integers(info.min, info.max, size=4000, dtype=dtype)
        result = strict_engine().run(values, order=3, tuple_size=2)
        expected = oracle(values, order=3, tuple_size=2)
        assert result.values.dtype == np.dtype(dtype)
        assert np.array_equal(result.values, expected)

    def test_single_worker(self, rng):
        # k == 1: every chunk's carry comes straight from the running
        # accumulator (regression for the carry/accumulator aliasing).
        values = make_int_array(rng, 2000, dtype=np.int64)
        result = strict_engine(num_workers=1).run(values, order=2)
        assert np.array_equal(result.values, oracle(values, order=2))

    def test_worker_count_invariance(self, rng):
        values = make_int_array(rng, 5000, dtype=np.int64)
        results = [
            strict_engine(num_workers=w).run(values, order=2, tuple_size=2).values
            for w in (1, 2, 3, 4)
        ]
        for other in results[1:]:
            assert np.array_equal(results[0], other)

    def test_chained_scheme(self, rng):
        values = make_int_array(rng, 3000, dtype=np.int64)
        result = strict_engine(carry_scheme="chained").run(values, order=2)
        assert result.carry_scheme == "chained"
        assert np.array_equal(result.values, oracle(values, order=2))

    def test_oversubscribed_workers(self, rng):
        # More workers than chunks: the excess stay idle, results hold.
        values = make_int_array(rng, 600, dtype=np.int64)
        engine = strict_engine(num_workers=8, chunk_elements=256)
        result = engine.run(values, order=2)
        assert result.num_chunks < 8
        assert np.array_equal(result.values, oracle(values, order=2))


class TestDegradation:
    def test_empty_input(self):
        result = ParallelSamScan().run(np.array([], dtype=np.int64))
        assert result.engine_used == "host"
        assert len(result.values) == 0

    def test_singleton_and_tiny(self, rng):
        for n in (1, 2, 7):
            values = make_int_array(rng, n, dtype=np.int32)
            result = ParallelSamScan().run(values, order=2)
            assert result.engine_used == "host"
            assert np.array_equal(result.values, oracle(values, order=2))

    def test_tuple_size_exceeds_n(self, rng):
        values = make_int_array(rng, 5, dtype=np.int64)
        result = ParallelSamScan().run(values, tuple_size=11)
        assert np.array_equal(result.values, oracle(values, tuple_size=11))

    def test_below_crossover_uses_host(self, rng):
        values = make_int_array(rng, 1000, dtype=np.int64)
        result = ParallelSamScan().run(values)
        assert result.engine_used == "host"
        assert "crossover" in result.counters.fallback_reason
        assert np.array_equal(result.values, oracle(values))

    def test_crossover_default(self):
        assert ParallelSamScan().min_parallel_elements == (
            DEFAULT_MIN_PARALLEL_ELEMENTS
        )

    def test_custom_op_degrades_to_host(self, rng):
        # A locally constructed operator cannot be named across the
        # process boundary; the engine must notice and stay bit-correct.
        custom = AssociativeOp(
            name="add", fn=lambda a, b: a + b, identity_fn=lambda dt: dt.type(0)
        )
        values = make_int_array(rng, 3000, dtype=np.int64)
        engine = strict_engine(fallback="host")
        result = engine.run(values, op=custom)
        assert result.engine_used == "host"
        assert "picklable" in result.counters.fallback_reason
        assert np.array_equal(result.values, oracle(values))


class TestResultAndCounters:
    def test_counters_shape(self, rng):
        values = make_int_array(rng, 4000, dtype=np.int64)
        result = strict_engine().run(values, order=2)
        counters = result.counters
        assert result.engine_used == "parallel"
        assert counters.num_chunks == result.num_chunks
        assert counters.chunks_claimed == result.num_chunks
        assert len(counters.workers) == result.num_workers
        assert counters.carry_additions > 0
        assert counters.seconds_total > 0.0
        # Deterministic strided partition: per-worker loads within 1.
        per_worker = counters.chunks_per_worker()
        assert max(per_worker) - min(per_worker) <= 1

    def test_counters_dict_round_trip(self, rng):
        values = make_int_array(rng, 3000, dtype=np.int64)
        result = strict_engine().run(values)
        d = result.counters.as_dict()
        assert d["engine_used"] == "parallel"
        assert d["chunks_claimed"] == result.num_chunks
        assert len(d["workers"]) == result.num_workers

    def test_validation(self):
        engine = ParallelSamScan()
        with pytest.raises(ValueError):
            engine.run(np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(ValueError):
            engine.run(np.zeros(4, dtype=np.int64), order=0)
        with pytest.raises(ValueError):
            engine.run(np.zeros(4, dtype=np.int64), tuple_size=0)
        with pytest.raises(KeyError):
            ParallelSamScan(carry_scheme="nope")
        with pytest.raises(ValueError):
            ParallelSamScan(fallback="nope")
        with pytest.raises(ValueError):
            ParallelSamScan(num_workers=0)


class TestApiRouting:
    def test_engine_by_name(self, rng):
        values = make_int_array(rng, 2000, dtype=np.int64)
        got = repro.prefix_sum(values, order=2, engine="parallel")
        assert np.array_equal(got, oracle(values, order=2))

    def test_scan_by_name(self, rng):
        values = make_int_array(rng, 2000, dtype=np.int64)
        got = repro.scan(values, op="max", engine="parallel")
        assert np.array_equal(got, oracle(values, op="max"))

    def test_host_name_is_host_path(self, rng):
        values = make_int_array(rng, 100, dtype=np.int32)
        assert np.array_equal(
            repro.prefix_sum(values, engine="host"), oracle(values)
        )

    def test_engine_names_all_resolve(self):
        for name in repro.ENGINE_NAMES:
            engine = repro.resolve_engine(name)
            assert engine is None or hasattr(engine, "run")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            repro.resolve_engine("warp_drive")

    def test_engine_object_passthrough(self):
        engine = ParallelSamScan()
        assert repro.resolve_engine(engine) is engine
