"""SessionRegistry: lifecycle, independence, and whole-registry durability."""

from __future__ import annotations

import json

import numpy as np
import pytest

from conftest import make_int_array
from repro.serve import SessionExistsError, SessionRegistry, UnknownSessionError
from repro.stream.errors import CheckpointError, CheckpointMismatchError
from repro.stream.session import ScanSession


def test_open_creates_then_reattaches():
    registry = SessionRegistry()
    session, created = registry.open("a", op="add", dtype="int64")
    assert created and len(registry) == 1
    again, created = registry.open("a", op="add", dtype="int64")
    assert not created and again is session


def test_open_conflicting_config_is_typed_error():
    registry = SessionRegistry()
    registry.open("a", op="add", dtype="int64")
    with pytest.raises(SessionExistsError):
        registry.open("a", op="max", dtype="int64")
    with pytest.raises(SessionExistsError):
        registry.open("a", op="add", dtype="int32")


def test_open_requires_name_and_dtype():
    registry = SessionRegistry()
    with pytest.raises(ValueError):
        registry.open("", dtype="int64")
    with pytest.raises(ValueError):
        registry.open("a", dtype=None)


def test_get_and_close_unknown_session(rng):
    registry = SessionRegistry()
    with pytest.raises(UnknownSessionError):
        registry.get("ghost")
    session, _ = registry.open("a", dtype="int64")
    session.feed(make_int_array(rng, 10, dtype=np.int64))
    counters = registry.close("a")
    assert counters.chunks == 1
    with pytest.raises(UnknownSessionError):
        registry.get("a")


def test_identical_config_sessions_do_not_share_carry(rng):
    """Two sessions opened with the same configuration are independent
    streams: feeding one must not move the other's carry or offset."""
    registry = SessionRegistry()
    a, _ = registry.open("a", op="add", order=2, tuple_size=3, dtype="int64")
    b, _ = registry.open("b", op="add", order=2, tuple_size=3, dtype="int64")
    assert a is not b
    chunk = make_int_array(rng, 30, dtype=np.int64)
    out_a = a.feed(chunk.copy())
    assert b.offset == 0
    np.testing.assert_array_equal(
        b._carry, np.zeros_like(b._carry)
    )  # add identity
    # b's first feed must equal a fresh session's first feed, not a
    # continuation of a's stream.
    fresh = ScanSession(op="add", order=2, tuple_size=3, dtype="int64")
    np.testing.assert_array_equal(b.feed(chunk.copy()), fresh.feed(chunk.copy()))
    assert out_a is not None


def test_registry_save_load_round_trip(rng, tmp_path):
    registry = SessionRegistry()
    grid = [
        ("a", "add", 1, 1, True, "int64"),
        ("b", "max", 2, 3, True, "int32"),
        ("c", "xor", 1, 2, False, "uint64"),
    ]
    feeds = {}
    for name, op, order, s, inclusive, dtype in grid:
        session, _ = registry.open(
            name, op=op, order=order, tuple_size=s,
            inclusive=inclusive, dtype=dtype,
        )
        lo, hi = (0, 100) if dtype.startswith("u") else (-50, 50)
        chunk = make_int_array(rng, 6 * s, dtype=np.dtype(dtype), lo=lo, hi=hi)
        session.feed(chunk.copy())
        feeds[name] = make_int_array(rng, 4 * s, dtype=np.dtype(dtype), lo=lo, hi=hi)

    path = tmp_path / "registry.json"
    registry.save(path)
    expected = {
        name: registry.get(name).feed(feeds[name].copy()) for name in feeds
    }

    restored = SessionRegistry()
    assert restored.load(path) == len(grid)
    for name in feeds:
        session = restored.get(name)
        np.testing.assert_array_equal(
            session.feed(feeds[name].copy()), expected[name]
        )
        assert session.counters.resumes == 1


def test_registry_load_rejects_foreign_and_corrupt(tmp_path):
    registry = SessionRegistry()
    missing = tmp_path / "nope.json"
    with pytest.raises(CheckpointError):
        registry.load(missing)
    foreign = tmp_path / "foreign.json"
    foreign.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(CheckpointError):
        registry.load(foreign)
    truncated = tmp_path / "bad.json"
    truncated.write_text("{not json")
    with pytest.raises(CheckpointError):
        registry.load(truncated)


def test_registry_load_rejects_wrong_version(tmp_path, rng):
    registry = SessionRegistry()
    session, _ = registry.open("a", dtype="int64")
    session.feed(make_int_array(rng, 4, dtype=np.int64))
    path = tmp_path / "registry.json"
    registry.save(path)
    doc = json.loads(path.read_text())
    doc["version"] = 999
    path.write_text(json.dumps(doc))
    with pytest.raises(CheckpointError):
        SessionRegistry().load(path)


def test_registry_load_revalidates_session_hashes(tmp_path, rng):
    """A snapshot whose recorded config was edited after the fact must
    be rejected with the typed mismatch error, not applied."""
    registry = SessionRegistry()
    session, _ = registry.open("a", op="add", dtype="int64")
    session.feed(make_int_array(rng, 4, dtype=np.int64))
    path = tmp_path / "registry.json"
    registry.save(path)
    doc = json.loads(path.read_text())
    doc["registry"]["sessions"]["a"]["state"]["config"]["op"] = "max"
    path.write_text(json.dumps(doc))
    with pytest.raises(CheckpointMismatchError):
        SessionRegistry().load(path)


def test_aggregate_counters_survive_close(rng):
    registry = SessionRegistry()
    a, _ = registry.open("a", dtype="int64")
    b, _ = registry.open("b", dtype="int64")
    a.feed(make_int_array(rng, 10, dtype=np.int64))
    b.feed(make_int_array(rng, 20, dtype=np.int64))
    before = registry.aggregate_counters()
    registry.close("a")
    after = registry.aggregate_counters()
    assert after.chunks == before.chunks == 2
    assert after.elements == before.elements == 30
