"""Unit tests for the block-local scan engines."""

import numpy as np
import pytest

from repro.core.localscan import (
    apply_lane_carries,
    lane_of,
    lane_start_in_chunk,
    strided_exclusive_from_inclusive,
    strided_inclusive_scan,
    warp_faithful_chunk_scan,
)
from repro.gpusim.block import BlockContext
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.spec import TITAN_X
from repro.ops import ADD, MAX, XOR
from repro.reference import inclusive_scan_serial


class TestLaneMath:
    def test_lane_of(self):
        assert lane_of(0, 3) == 0
        assert lane_of(7, 3) == 1

    def test_lane_start_in_chunk(self):
        # Chunk starting at global index 7, tuple size 3: the first
        # element (global 7) is lane 1; lane 0 first appears at local 2.
        assert lane_start_in_chunk(7, 1, 3) == 0
        assert lane_start_in_chunk(7, 2, 3) == 1
        assert lane_start_in_chunk(7, 0, 3) == 2

    def test_round_trip(self):
        for offset in range(10):
            for s in (1, 2, 3, 5):
                for lane in range(s):
                    start = lane_start_in_chunk(offset, lane, s)
                    assert lane_of(offset + start, s) == lane


class TestStridedScan:
    @pytest.mark.parametrize("offset", [0, 1, 2, 3, 7, 100])
    @pytest.mark.parametrize("tuple_size", [1, 2, 3, 5])
    def test_matches_global_scan_fragment(self, rng, offset, tuple_size):
        # The strided scan of a chunk must equal the global tuple scan
        # restricted to the chunk, when the prefix carries are folded in.
        full = rng.integers(-20, 20, 200).astype(np.int32)
        global_scan = inclusive_scan_serial(full, tuple_size=tuple_size)
        chunk = full[offset : offset + 64]
        scanned, sums = strided_inclusive_scan(chunk, offset, tuple_size, ADD)
        carries = np.zeros(tuple_size, dtype=np.int32)
        for lane in range(tuple_size):
            prior = [i for i in range(offset) if i % tuple_size == lane]
            if prior:
                carries[lane] = global_scan[prior[-1]]
        corrected = apply_lane_carries(scanned, offset, tuple_size, ADD, carries)
        assert np.array_equal(corrected, global_scan[offset : offset + 64])

    def test_local_sums_per_lane(self):
        values = np.array([1, 10, 2, 20, 3], dtype=np.int32)
        _, sums = strided_inclusive_scan(values, 0, 2, ADD)
        assert np.array_equal(sums, np.array([6, 30], dtype=np.int32))

    def test_missing_lane_gets_identity(self):
        values = np.array([5], dtype=np.int32)
        _, sums = strided_inclusive_scan(values, 0, 3, ADD)
        assert sums[0] == 5 and sums[1] == 0 and sums[2] == 0

    def test_missing_lane_identity_for_max(self):
        values = np.array([5], dtype=np.int32)
        _, sums = strided_inclusive_scan(values, 0, 2, MAX)
        assert sums[1] == np.iinfo(np.int32).min

    def test_offset_changes_lane_phase(self):
        values = np.array([1, 2, 3, 4], dtype=np.int32)
        scanned0, _ = strided_inclusive_scan(values, 0, 2, ADD)
        scanned1, _ = strided_inclusive_scan(values, 1, 2, ADD)
        assert np.array_equal(scanned0, np.array([1, 2, 4, 6], dtype=np.int32))
        assert np.array_equal(scanned1, np.array([1, 2, 4, 6], dtype=np.int32))
        # Lane assignment differs even though values coincide here:
        _, sums0 = strided_inclusive_scan(values, 0, 2, ADD)
        _, sums1 = strided_inclusive_scan(values, 1, 2, ADD)
        assert np.array_equal(sums0, np.array([4, 6], dtype=np.int32))
        assert np.array_equal(sums1, np.array([6, 4], dtype=np.int32))


class TestExclusiveShift:
    @pytest.mark.parametrize("tuple_size", [1, 2, 3])
    def test_exclusive_from_inclusive(self, rng, tuple_size):
        values = rng.integers(-20, 20, 60).astype(np.int32)
        scanned, _ = strided_inclusive_scan(values, 0, tuple_size, ADD)
        carries = np.zeros(tuple_size, dtype=np.int32)
        exclusive = strided_exclusive_from_inclusive(
            scanned, 0, tuple_size, ADD, carries
        )
        from repro.reference import exclusive_scan_serial

        assert np.array_equal(
            exclusive, exclusive_scan_serial(values, tuple_size=tuple_size)
        )

    def test_carry_seeds_first_element(self):
        scanned = np.array([1, 3, 6], dtype=np.int32)
        out = strided_exclusive_from_inclusive(
            scanned, 0, 1, ADD, np.array([100], dtype=np.int32)
        )
        assert np.array_equal(out, np.array([100, 101, 103], dtype=np.int32))


class TestApplyCarries:
    def test_scalar_path_for_tuple1(self):
        scanned = np.array([1, 2, 3], dtype=np.int32)
        out = apply_lane_carries(scanned, 0, 1, ADD, np.array([10], dtype=np.int32))
        assert np.array_equal(out, np.array([11, 12, 13], dtype=np.int32))

    def test_lane_aligned(self):
        scanned = np.array([1, 10, 2, 20], dtype=np.int32)
        out = apply_lane_carries(
            scanned, 0, 2, ADD, np.array([100, 1000], dtype=np.int32)
        )
        assert np.array_equal(out, np.array([101, 1010, 102, 1020], dtype=np.int32))

    def test_xor_carries(self):
        scanned = np.array([0b01, 0b11], dtype=np.int32)
        out = apply_lane_carries(scanned, 0, 1, XOR, np.array([0b10], dtype=np.int32))
        assert np.array_equal(out, np.array([0b11, 0b01], dtype=np.int32))


class TestWarpFaithful:
    def _ctx(self, threads=64):
        return BlockContext(0, 1, TITAN_X, GlobalMemory(), threads_per_block=threads)

    @pytest.mark.parametrize("n", [1, 31, 32, 64, 65, 200, 256])
    def test_matches_vectorized(self, rng, n):
        values = rng.integers(-50, 50, n).astype(np.int32)
        ctx = self._ctx()
        faithful = warp_faithful_chunk_scan(ctx, values, ADD)
        vectorized, _ = strided_inclusive_scan(values, 0, 1, ADD)
        assert np.array_equal(faithful, vectorized)

    def test_max_with_identity_padding(self, rng):
        # Trailing partial tiles are identity-padded; for MAX the
        # identity is INT_MIN so padding must not leak into results.
        values = rng.integers(-50, 50, 70).astype(np.int32)
        ctx = self._ctx()
        out = warp_faithful_chunk_scan(ctx, values, MAX)
        assert np.array_equal(out, inclusive_scan_serial(values, op=MAX))

    def test_multi_tile_uses_register_carry(self, rng):
        values = rng.integers(-5, 5, 3 * 64).astype(np.int64)
        ctx = self._ctx(64)
        out = warp_faithful_chunk_scan(ctx, values, ADD)
        assert np.array_equal(out, inclusive_scan_serial(values))
        # 3 tiles x 2 barriers each.
        assert ctx.stats.barriers == 6
