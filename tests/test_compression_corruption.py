"""Byte-level corruption fuzz for both compressed container formats.

The robustness contract under test: a corrupted container may decode to
exactly the original values (flips in padding or other dead bytes) or
raise :class:`CodecError` — never return a wrong answer, and never leak
a foreign exception type (``struct.error``, ``IndexError``, a bare
``ValueError`` from the varint layer) out of the codec boundary.

Three layers of attack:

* exhaustive single-bit flips over every byte of a ``SAMD`` and a
  ``SAMB`` container (codec API and, for blocked, the file reader);
* truncation at every prefix length;
* crafted containers whose CRCs are *valid* but whose varint payload is
  not — the regression case for the typed-error fix: the coder layer's
  ``ValueError`` must surface as :class:`CodecError` with the original
  exception chained as ``__cause__``.
"""

import os
import struct
import zlib

import numpy as np
import pytest

from repro.compression import BlockedDeltaCodec, CodecError, DeltaCodec
from repro.compression import blocked as blocked_mod
from repro.compression.codec import _HEADER as SAMD_HEADER
from repro.compression.stream import BlockedFileReader, read_index
from repro.compression.zigzag import _varint_decode_scalar, varint_decode


def _samd_container(rng, n=600, dtype=np.int32):
    values = np.cumsum(rng.integers(-40, 41, n)).astype(dtype)
    blob = DeltaCodec().compress(values)
    return values, bytes(blob.data)


def _samb_container(rng, n=500, dtype=np.int64, block_elements=128):
    values = np.cumsum(rng.integers(-40, 41, n)).astype(dtype)
    blob = BlockedDeltaCodec(block_elements=block_elements).compress(values)
    return values, bytes(blob.data)


def _flip(data: bytes, pos: int, bit: int) -> bytes:
    mutated = bytearray(data)
    mutated[pos] ^= 1 << bit
    return bytes(mutated)


def _assert_error_or_equal(decode, values):
    """The fuzz contract: CodecError, or a bit-identical round trip."""
    try:
        result = decode()
    except CodecError:
        return
    # CodecError subclasses ValueError, so any other exception type —
    # including a bare ValueError — propagates and fails the test.
    assert np.array_equal(result, values), (
        "corrupted container decoded to a WRONG answer"
    )


class TestByteFlipMonolithic:
    def test_every_byte_flip_is_error_or_exact(self, rng):
        values, data = _samd_container(rng)
        codec = DeltaCodec()
        for pos in range(len(data)):
            mutated = _flip(data, pos, pos % 8)
            _assert_error_or_equal(lambda: codec.decompress(mutated), values)

    def test_every_truncation_is_error(self, rng):
        _, data = _samd_container(rng, n=200)
        codec = DeltaCodec()
        for length in range(len(data)):
            with pytest.raises(CodecError):
                codec.decompress(data[:length])


class TestByteFlipBlocked:
    def test_every_byte_flip_is_error_or_exact(self, rng):
        values, data = _samb_container(rng)
        codec = BlockedDeltaCodec()
        for pos in range(len(data)):
            mutated = _flip(data, pos, pos % 8)
            _assert_error_or_equal(lambda: codec.decompress(mutated), values)

    def test_every_truncation_is_error(self, rng):
        _, data = _samb_container(rng, n=300)
        codec = BlockedDeltaCodec()
        for length in range(len(data)):
            with pytest.raises(CodecError):
                codec.decompress(data[:length])

    def test_file_reader_flips_are_error_or_exact(self, rng, tmp_path):
        """The stream-layer reader enforces the same contract: a
        corrupted .samb file opened for scanning either fails typed at
        open/read time or decodes exactly."""
        values, data = _samb_container(rng, n=400, block_elements=64)
        path = os.path.join(tmp_path, "c.samb")
        for pos in range(len(data)):
            with open(path, "wb") as fh:
                fh.write(_flip(data, pos, pos % 8))

            def read_all():
                with BlockedFileReader(path) as reader:
                    return np.array(
                        reader.read_range(0, reader.count), copy=True
                    )

            _assert_error_or_equal(read_all, values)


class TestValidCrcBadVarint:
    """Satellite regression: CRCs can be *re*computed by an attacker or
    a buggy writer, so a checksum pass must not exempt the varint layer
    from typed error handling."""

    @staticmethod
    def _resign_samd(data: bytes, payload: bytes) -> bytes:
        head = data[:16] + struct.pack("<I", zlib.crc32(payload))
        return head + struct.pack("<I", zlib.crc32(head)) + payload

    @pytest.mark.parametrize("where", ["final-byte", "mid-payload"])
    def test_monolithic_wraps_varint_error(self, rng, where):
        _, data = _samd_container(rng)
        payload = bytearray(data[SAMD_HEADER.size:])
        # Setting a continuation bit either starves the decoder of
        # elements (truncated) or over-runs 64 bits — both ValueError
        # in the coder layer, both must surface as CodecError.
        pos = len(payload) - 1 if where == "final-byte" else len(payload) // 2
        payload[pos] |= 0x80
        mutated = self._resign_samd(data, bytes(payload))
        with pytest.raises(CodecError, match="varint|truncated|trailing"):
            DeltaCodec().decompress(mutated)
        try:
            DeltaCodec().decompress(mutated)
        except CodecError as exc:
            assert isinstance(exc.__cause__, ValueError)

    @staticmethod
    def _resign_samb(data: bytes, block: int, new_payload: bytes):
        header = blocked_mod.parse_header_bytes(data)
        nb = header["num_blocks"]
        index_lo = blocked_mod.HEADER_BYTES
        index_hi = index_lo + nb * blocked_mod.INDEX_ENTRY_BYTES
        sizes, orders, _ = blocked_mod.parse_index_bytes(
            data[index_lo:index_hi], nb, header["index_crc"]
        )
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        payloads = [
            data[index_hi + offsets[i]: index_hi + offsets[i + 1]]
            for i in range(nb)
        ]
        payloads[block] = new_payload
        sizes[block] = len(new_payload)
        index = b"".join(
            blocked_mod.pack_index_entry(
                sizes[i], orders[i], zlib.crc32(payloads[i])
            )
            for i in range(nb)
        )
        head = blocked_mod.pack_header(
            header["dtype"], header["tuple_size"], header["block_elements"],
            header["count"], nb, zlib.crc32(index),
        )
        return head + index + b"".join(payloads)

    @pytest.mark.parametrize("where", ["final-byte", "mid-payload"])
    def test_blocked_wraps_varint_error(self, rng, where, tmp_path):
        _, data = _samb_container(rng)
        header = blocked_mod.parse_header_bytes(data)
        nb = header["num_blocks"]
        index_lo = blocked_mod.HEADER_BYTES
        index_hi = index_lo + nb * blocked_mod.INDEX_ENTRY_BYTES
        sizes, _, _ = blocked_mod.parse_index_bytes(
            data[index_lo:index_hi], nb, header["index_crc"]
        )
        payload = bytearray(data[index_hi: index_hi + sizes[0]])
        pos = len(payload) - 1 if where == "final-byte" else len(payload) // 2
        payload[pos] |= 0x80
        mutated = self._resign_samb(data, 0, bytes(payload))

        with pytest.raises(CodecError, match="varint|truncated|trailing"):
            BlockedDeltaCodec().decompress(mutated)

        # The stream-layer reader hits the same typed wrap per block.
        path = os.path.join(tmp_path, "bad.samb")
        with open(path, "wb") as fh:
            fh.write(mutated)
        with pytest.raises(CodecError, match="varint|truncated|trailing"):
            with BlockedFileReader(path) as reader:
                reader.read_block(0)

    def test_cause_is_chained(self, rng):
        _, data = _samb_container(rng)
        header = blocked_mod.parse_header_bytes(data)
        nb = header["num_blocks"]
        index_lo = blocked_mod.HEADER_BYTES
        index_hi = index_lo + nb * blocked_mod.INDEX_ENTRY_BYTES
        sizes, _, _ = blocked_mod.parse_index_bytes(
            data[index_lo:index_hi], nb, header["index_crc"]
        )
        payload = bytearray(data[index_hi: index_hi + sizes[0]])
        payload[-1] |= 0x80
        mutated = self._resign_samb(data, 0, bytes(payload))
        try:
            BlockedDeltaCodec().decompress(mutated)
        except CodecError as exc:
            assert isinstance(exc.__cause__, ValueError)
        else:  # pragma: no cover - the decode must fail
            pytest.fail("corrupt varint payload decoded successfully")


class TestVarintDifferential:
    """The vectorized varint decoder and the scalar reference must be
    bit-for-bit interchangeable — on valid streams *and* on garbage."""

    def test_random_garbage_agrees_with_scalar(self, rng):
        for _ in range(300):
            n = int(rng.integers(0, 40))
            data = bytes(rng.integers(0, 256, n, dtype=np.uint8))
            count = int(rng.integers(0, 12))
            try:
                vec = varint_decode(data, count)
            except ValueError as exc:
                with pytest.raises(ValueError):
                    _varint_decode_scalar(data, count)
                del exc
            else:
                assert np.array_equal(
                    vec, _varint_decode_scalar(data, count)
                )

    def test_valid_streams_agree_with_scalar(self, rng):
        for _ in range(50):
            n = int(rng.integers(0, 200))
            values = rng.integers(0, 2**63, n).astype(np.uint64)
            from repro.compression import varint_encode

            data = varint_encode(values)
            assert np.array_equal(
                varint_decode(data, n), _varint_decode_scalar(data, n)
            )
