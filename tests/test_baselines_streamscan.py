"""Tests for the StreamScan baseline and the trace facility."""

import numpy as np
import pytest

from conftest import make_int_array, small_sam
from repro.baselines import StreamScan
from repro.baselines.streamscan import matrix_block_scan
from repro.core import SamScan
from repro.gpusim import Tracer, render_pipeline, summarize_stagger
from repro.ops import ADD, MAX
from repro.reference import exclusive_scan_serial, inclusive_scan_serial, prefix_sum_serial

KW = dict(threads_per_block=64, items_per_thread=2)


class TestMatrixBlockScan:
    @pytest.mark.parametrize("n", [0, 1, 31, 32, 33, 64, 100, 1024, 1000])
    @pytest.mark.parametrize("cols", [1, 8, 32])
    def test_matches_flat_scan(self, rng, n, cols):
        values = rng.integers(-50, 50, n).astype(np.int32)
        got = matrix_block_scan(values, cols, ADD)
        assert np.array_equal(got, inclusive_scan_serial(values))

    def test_max_operator(self, rng):
        values = rng.integers(-50, 50, 200).astype(np.int64)
        got = matrix_block_scan(values, 16, MAX)
        assert np.array_equal(got, inclusive_scan_serial(values, op=MAX))

    def test_wraparound(self):
        values = np.full(96, 2**30, dtype=np.int32)
        got = matrix_block_scan(values, 32, ADD)
        assert np.array_equal(got, inclusive_scan_serial(values))


class TestStreamScanEngine:
    @pytest.mark.parametrize("n", [1, 100, 1000, 5003])
    def test_matches_reference(self, rng, n):
        values = make_int_array(rng, n)
        result = StreamScan(**KW).run(values)
        assert np.array_equal(result.values, prefix_sum_serial(values))

    def test_2n_traffic(self, rng):
        result = StreamScan(**KW).run(make_int_array(rng, 8192))
        assert 2.0 <= result.words_per_element() < 2.4

    def test_single_launch(self, rng):
        result = StreamScan(**KW).run(make_int_array(rng, 8192))
        assert result.stats.kernel_launches == 1

    def test_higher_order_iterates(self, rng):
        values = make_int_array(rng, 3000)
        result = StreamScan(**KW).run(values, order=3)
        assert np.array_equal(result.values, prefix_sum_serial(values, order=3))
        assert result.stats.kernel_launches == 3

    @pytest.mark.parametrize("tuple_size", [2, 5])
    def test_tuples(self, rng, tuple_size):
        values = make_int_array(rng, 2995)
        result = StreamScan(**KW).run(values, tuple_size=tuple_size)
        assert np.array_equal(
            result.values, prefix_sum_serial(values, tuple_size=tuple_size)
        )

    def test_exclusive(self, rng):
        values = make_int_array(rng, 1200)
        result = StreamScan(**KW).run(values, inclusive=False)
        assert np.array_equal(result.values, exclusive_scan_serial(values))

    @pytest.mark.parametrize("policy", ["round_robin", "reversed", "random"])
    def test_schedule_independent(self, rng, policy):
        values = make_int_array(rng, 4000)
        result = StreamScan(policy=policy, **KW).run(values)
        assert np.array_equal(result.values, prefix_sum_serial(values))

    def test_minimal_carry_work(self, rng):
        # Adjacent chain: exactly one carry addition per tile.
        values = make_int_array(rng, 8192)
        result = StreamScan(**KW).run(values)
        assert result.stats.carry_additions == result.num_chunks

    def test_chain_waits_more_than_sam_decoupled(self, rng):
        values = make_int_array(rng, 8000)
        stream = StreamScan(policy="reversed", **KW).run(values)
        sam = small_sam(policy="reversed", num_blocks=8).run(values)
        # Both are correct; the chain's serial dependence shows up as
        # (at least comparable) failed polls under a hostile schedule.
        assert stream.stats.failed_flag_polls > 0
        assert np.array_equal(stream.values, sam.values)

    def test_validation(self):
        with pytest.raises(ValueError, match="matrix_cols"):
            StreamScan(matrix_cols=0)
        with pytest.raises(ValueError, match="1-D"):
            StreamScan(**KW).run(np.zeros((2, 2), dtype=np.int32))

    def test_empty(self):
        result = StreamScan(**KW).run(np.array([], dtype=np.int32))
        assert result.values.size == 0


class TestTracer:
    def _traced_run(self, policy="round_robin"):
        tracer = Tracer()
        engine = SamScan(
            threads_per_block=32,
            items_per_thread=1,
            num_blocks=3,
            policy=policy,
            tracer=tracer,
        )
        values = np.arange(32 * 9, dtype=np.int32)
        result = engine.run(values)
        assert np.array_equal(result.values, np.cumsum(values, dtype=np.int32))
        return tracer

    def test_events_cover_every_chunk(self):
        tracer = self._traced_run()
        stored = tracer.chunk_completion_order()
        assert sorted(stored) == list(range(9))

    def test_blocks_process_strided_chunks(self):
        tracer = self._traced_run()
        for block in range(3):
            chunks = {e.chunk for e in tracer.for_block(block)}
            assert chunks == {block, block + 3, block + 6}

    def test_event_sequence_per_chunk(self):
        tracer = self._traced_run()
        chunk0 = [e.action for e in tracer.events if e.chunk == 0]
        assert chunk0 == ["load", "publish", "carry", "store"]

    def test_hostile_schedule_produces_waits(self):
        tracer = self._traced_run(policy="reversed")
        assert any(e.action == "wait" for e in tracer.events)

    def test_render_contains_figure2_labels(self):
        tracer = self._traced_run()
        text = render_pipeline(tracer, 3)
        assert "Block 0" in text and "Block 2" in text
        assert "S0" in text and "Carry0" in text

    def test_summarize_stagger(self):
        tracer = self._traced_run()
        summary = summarize_stagger(tracer, 3)
        assert "9 chunks stored" in summary
        assert "in global order" in summary

    def test_empty_tracer_summary(self):
        assert summarize_stagger(Tracer(), 2) is None
