"""Property-based tests of the performance and energy models.

The models are phenomenological; what must hold regardless of the
calibration constants are the *structural* invariants below — time
monotone in work, throughput bounded by the memory ceiling, iterated
algorithms exactly linear in the order, and the energy decomposition
consistent.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import PerformanceModel, UnsupportedProblem
from repro.perf.energy import EnergyModel

GPUS = st.sampled_from(["Titan X", "K40"])
BITS = st.sampled_from([32, 64])
SIZES = st.integers(10, 30).map(lambda e: 1 << e)
ORDERS = st.integers(1, 10)
TUPLES = st.integers(1, 10)

model = PerformanceModel()
energy = EnergyModel()


class TestTimeInvariants:
    @given(gpu=GPUS, bits=BITS, n=SIZES, order=ORDERS, tuple_size=TUPLES)
    def test_time_positive(self, gpu, bits, n, order, tuple_size):
        t = model.time_seconds("sam", gpu, bits, n, order=order, tuple_size=tuple_size)
        assert t > 0

    @given(gpu=GPUS, bits=BITS, e=st.integers(10, 29), order=ORDERS)
    def test_time_monotone_in_n(self, gpu, bits, e, order):
        small = model.time_seconds("sam", gpu, bits, 1 << e, order=order)
        large = model.time_seconds("sam", gpu, bits, 1 << (e + 1), order=order)
        assert large > small

    @given(gpu=GPUS, bits=BITS, n=SIZES, order=st.integers(1, 9))
    def test_sam_time_monotone_in_order(self, gpu, bits, n, order):
        base = model.time_seconds("sam", gpu, bits, n, order=order)
        higher = model.time_seconds("sam", gpu, bits, n, order=order + 1)
        assert higher >= base

    @given(gpu=GPUS, bits=BITS, n=SIZES, tuple_size=st.integers(1, 9))
    def test_sam_time_monotone_in_tuple_size(self, gpu, bits, n, tuple_size):
        base = model.time_seconds("sam", gpu, bits, n, tuple_size=tuple_size)
        higher = model.time_seconds("sam", gpu, bits, n, tuple_size=tuple_size + 1)
        assert higher >= base * 0.999

    @given(gpu=GPUS, bits=BITS, n=SIZES, order=ORDERS)
    def test_iterated_algorithms_linear_in_order(self, gpu, bits, n, order):
        single = model.time_seconds("cub", gpu, bits, n)
        repeated = model.time_seconds("cub", gpu, bits, n, order=order)
        assert repeated == pytest.approx(order * single, rel=1e-9)

    @given(gpu=GPUS, bits=BITS, n=SIZES)
    def test_memcpy_is_fastest(self, gpu, bits, n):
        memcpy = model.throughput("memcpy", gpu, bits, n)
        for alg in ("sam", "cub", "thrust", "chained"):
            assert model.throughput(alg, gpu, bits, n) <= memcpy * 1.001

    @given(gpu=GPUS, bits=BITS, n=SIZES)
    def test_throughput_below_physical_bandwidth(self, gpu, bits, n):
        from repro.gpusim.spec import K40, TITAN_X

        spec = TITAN_X if gpu == "Titan X" else K40
        ceiling = spec.peak_bandwidth_gbs * 1e9 / (2 * bits // 8)
        assert model.throughput("sam", gpu, bits, n) <= ceiling

    @given(bits=BITS, n=SIZES, order=ORDERS, tuple_size=TUPLES)
    def test_sweep_matches_pointwise(self, bits, n, order, tuple_size):
        swept = model.sweep("sam", "K40", bits, [n], order=order, tuple_size=tuple_size)
        point = model.throughput("sam", "K40", bits, n, order=order, tuple_size=tuple_size)
        assert swept == [point]


class TestEnergyInvariants:
    @given(gpu=GPUS, bits=BITS, n=SIZES, order=ORDERS)
    def test_energy_positive_and_monotone_in_order(self, gpu, bits, n, order):
        base = energy.energy_joules("sam", gpu, bits, n, order=order)
        assert base > 0
        higher = energy.energy_joules("sam", gpu, bits, n, order=order + 1)
        assert higher > base

    @given(gpu=GPUS, bits=BITS, e=st.integers(12, 28))
    def test_energy_superlinear_never(self, gpu, bits, e):
        # Doubling n at most doubles energy plus the fixed overhead.
        small = energy.energy_joules("sam", gpu, bits, 1 << e)
        large = energy.energy_joules("sam", gpu, bits, 1 << (e + 1))
        assert large <= 2 * small * 1.01

    @given(gpu=GPUS, n=st.integers(14, 30).map(lambda e: 1 << e))
    def test_traffic_dominates_between_2n_and_4n(self, gpu, n):
        # Above the latency-dominated region, 4n traffic costs more
        # energy than 2n.  (Below ~2^14, SAM's pipeline-fill idle energy
        # can exceed Thrust's — consistent with Figure 3's small-input
        # ordering, so the bound starts at 2^14.)
        sam = energy.energy_joules("sam", gpu, 32, n)
        thrust = energy.energy_joules("thrust", gpu, 32, n)
        assert thrust > sam
