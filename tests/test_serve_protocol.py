"""Frame codec and typed-error round-trips for the scan service."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import protocol
from repro.serve.errors import (
    ERROR_TYPES,
    ProtocolError,
    ServeError,
    UnknownSessionError,
    error_from_frame,
    error_to_header,
)
from repro.stream.errors import CheckpointMismatchError


def test_frame_round_trip():
    payload = np.arange(17, dtype=np.int64).tobytes()
    blob = protocol.encode_frame(
        protocol.FEED, {"session": "t", "id": 3}, payload
    )
    body_len = int.from_bytes(blob[:4], "big")
    assert body_len == len(blob) - 4
    verb, header, got = protocol.decode_body(blob[4:])
    assert verb == protocol.FEED
    assert header == {"session": "t", "id": 3}
    assert got == payload


def test_frame_empty_header_and_payload():
    blob = protocol.encode_frame(protocol.STATS)
    verb, header, payload = protocol.decode_body(blob[4:])
    assert (verb, header, payload) == (protocol.STATS, {}, b"")


def test_decode_rejects_truncated_body():
    with pytest.raises(ProtocolError):
        protocol.decode_body(b"\x01")


def test_decode_rejects_header_overrun():
    # claims a 100-byte header but the body is shorter
    body = bytes([protocol.OPEN]) + (100).to_bytes(4, "big") + b"{}"
    with pytest.raises(ProtocolError):
        protocol.decode_body(body)


def test_decode_rejects_bad_json_and_non_object():
    body = bytes([protocol.OPEN]) + (2).to_bytes(4, "big") + b"{!"
    with pytest.raises(ProtocolError):
        protocol.decode_body(body)
    body = bytes([protocol.OPEN]) + (2).to_bytes(4, "big") + b"[]"
    with pytest.raises(ProtocolError):
        protocol.decode_body(body)


def test_oversized_frame_rejected_before_allocation():
    import asyncio

    class FakeReader:
        def __init__(self, blob):
            self.blob = blob
            self.pos = 0

        async def readexactly(self, n):
            if self.pos + n > len(self.blob):
                raise asyncio.IncompleteReadError(
                    self.blob[self.pos :], n
                )
            out = self.blob[self.pos : self.pos + n]
            self.pos += n
            return out

    huge = (1 << 30).to_bytes(4, "big")
    with pytest.raises(ProtocolError):
        asyncio.run(protocol.read_frame(FakeReader(huge), max_frame_bytes=1024))


def test_read_frame_clean_eof_vs_torn_frame():
    import asyncio

    class FakeReader:
        def __init__(self, blob):
            self.blob = blob
            self.pos = 0

        async def readexactly(self, n):
            chunk = self.blob[self.pos : self.pos + n]
            self.pos += len(chunk)
            if len(chunk) < n:
                raise asyncio.IncompleteReadError(chunk, n)
            return chunk

    assert asyncio.run(protocol.read_frame(FakeReader(b""))) is None
    torn = protocol.encode_frame(protocol.STATS)[:-1]
    with pytest.raises(ProtocolError):
        asyncio.run(protocol.read_frame(FakeReader(torn)))


@pytest.mark.parametrize("name,cls", sorted(ERROR_TYPES.items()))
def test_error_header_round_trip(name, cls):
    exc = cls("something broke")
    header = error_to_header(exc)
    back = error_from_frame(header)
    assert type(back) is cls
    assert "something broke" in str(back)


def test_unknown_error_name_degrades_to_serve_error():
    back = error_from_frame({"error": "FutureError", "message": "hi"})
    assert type(back) is ServeError
    assert "FutureError" in str(back)


def test_stream_errors_cross_the_wire_typed():
    header = error_to_header(CheckpointMismatchError("bad hash"))
    assert isinstance(error_from_frame(header), CheckpointMismatchError)
    header = error_to_header(UnknownSessionError("nope"))
    assert isinstance(error_from_frame(header), UnknownSessionError)
