"""Unit tests for the associative-operator algebra."""

import numpy as np
import pytest

from repro.ops import (
    ADD,
    BITAND,
    BITOR,
    BUILTIN_OPS,
    MAX,
    MIN,
    MUL,
    XOR,
    AssociativeOp,
    get_op,
)

ALL_OPS = list(BUILTIN_OPS.values())
INT_DTYPES = [np.int32, np.int64, np.uint32, np.uint64]


class TestIdentity:
    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: op.name)
    @pytest.mark.parametrize("dtype", INT_DTYPES)
    def test_identity_is_neutral_left(self, op, dtype, rng):
        values = rng.integers(0, 100, size=64).astype(dtype)
        identity = np.full(64, op.identity(dtype), dtype=dtype)
        assert np.array_equal(op.apply(identity, values), values)

    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: op.name)
    @pytest.mark.parametrize("dtype", INT_DTYPES)
    def test_identity_is_neutral_right(self, op, dtype, rng):
        values = rng.integers(0, 100, size=64).astype(dtype)
        identity = np.full(64, op.identity(dtype), dtype=dtype)
        assert np.array_equal(op.apply(values, identity), values)

    def test_identity_has_requested_dtype(self):
        assert ADD.identity(np.int32).dtype == np.int32
        assert MAX.identity(np.int64).dtype == np.int64

    def test_max_identity_is_dtype_min(self):
        assert MAX.identity(np.int32) == np.iinfo(np.int32).min

    def test_min_identity_is_dtype_max(self):
        assert MIN.identity(np.int64) == np.iinfo(np.int64).max

    def test_and_identity_is_all_ones(self):
        assert BITAND.identity(np.int32) == -1
        assert BITAND.identity(np.uint32) == np.iinfo(np.uint32).max


class TestAssociativity:
    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: op.name)
    def test_sampled_associativity(self, op, rng):
        a, b, c = (rng.integers(-50, 50, size=128).astype(np.int64) for _ in range(3))
        left = op.apply(op.apply(a, b), c)
        right = op.apply(a, op.apply(b, c))
        assert np.array_equal(left, right)

    def test_add_wraps_like_int32(self):
        big = np.array([2**31 - 1], dtype=np.int32)
        assert ADD.apply(big, np.array([1], dtype=np.int32))[0] == np.iinfo(np.int32).min


class TestAccumulate:
    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: op.name)
    def test_accumulate_matches_loop(self, op, rng):
        values = rng.integers(1, 10, size=200).astype(np.int64)
        expected = values.copy()
        for i in range(1, len(expected)):
            expected[i] = op.apply(expected[i - 1 : i], expected[i : i + 1])[0]
        assert np.array_equal(op.accumulate(values), expected)

    def test_accumulate_preserves_dtype(self):
        values = np.arange(10, dtype=np.int32)
        assert ADD.accumulate(values).dtype == np.int32

    def test_accumulate_wraps_int32(self):
        values = np.full(3, 2**30, dtype=np.int32)
        result = ADD.accumulate(values)
        assert result.dtype == np.int32
        assert result[2] == np.int32(3 * 2**30 - 2**32)

    def test_accumulate_empty(self):
        out = ADD.accumulate(np.array([], dtype=np.int32))
        assert out.size == 0

    def test_accumulate_without_ufunc_uses_loop(self):
        custom = AssociativeOp("second", fn=lambda a, b: b, identity_fn=lambda dt: 0)
        values = np.array([5, 7, 9], dtype=np.int32)
        assert np.array_equal(custom.accumulate(values), values)


class TestReduce:
    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: op.name)
    def test_reduce_matches_accumulate_tail(self, op, rng):
        values = rng.integers(1, 10, size=77).astype(np.int32)
        assert op.reduce(values) == op.accumulate(values)[-1]

    def test_reduce_keeps_small_int_dtype(self):
        # numpy would promote int32 sums to the platform int without the
        # explicit dtype pin; GPU semantics require wraparound.
        values = np.full(4, 2**30, dtype=np.int32)
        result = ADD.reduce(values)
        assert np.int32(result) == np.int32(4 * 2**30 - 2**32)

    def test_reduce_empty_without_ufunc_raises(self):
        custom = AssociativeOp("second", fn=lambda a, b: b, identity_fn=lambda dt: 0)
        with pytest.raises(ValueError, match="empty axis"):
            custom.reduce(np.array([], dtype=np.int32))


class TestInversion:
    def test_add_invert(self, rng):
        a = rng.integers(-100, 100, size=50).astype(np.int32)
        b = rng.integers(-100, 100, size=50).astype(np.int32)
        assert np.array_equal(ADD.apply(ADD.invert(a, b), b), a)

    def test_xor_is_self_inverse(self, rng):
        a = rng.integers(0, 2**31, size=50).astype(np.int64)
        b = rng.integers(0, 2**31, size=50).astype(np.int64)
        assert np.array_equal(XOR.invert(XOR.apply(a, b), b), a)

    def test_max_not_invertible(self):
        assert not MAX.invertible
        with pytest.raises(TypeError, match="not invertible"):
            MAX.invert(np.array([1]), np.array([2]))


class TestDtypeValidation:
    def test_xor_rejects_float(self):
        with pytest.raises(TypeError, match="does not support"):
            XOR.check_dtype(np.float32)

    def test_add_accepts_float(self):
        assert ADD.check_dtype(np.float64) == np.float64

    @pytest.mark.parametrize("op", [XOR, BITAND, BITOR], ids=lambda op: op.name)
    def test_bitwise_ops_are_integer_only(self, op):
        assert op.supports_dtype(np.int32)
        assert not op.supports_dtype(np.float64)


class TestGetOp:
    def test_by_name(self):
        assert get_op("add") is ADD
        assert get_op("mul") is MUL

    def test_passthrough(self):
        assert get_op(MAX) is MAX

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown operator"):
            get_op("median")

    def test_wrong_type(self):
        with pytest.raises(TypeError, match="expected operator"):
            get_op(42)

    def test_repr(self):
        assert repr(ADD) == "AssociativeOp('add')"
