"""Out-of-core driver tests: ``scan_file``, checkpoints, resume.

Covers the acceptance criteria end to end: a file larger than the
chunk budget scans bit-identically to a one-shot scan, and a job
interrupted mid-run — by an injected crash or a real SIGKILL of the
CLI process — completes under resume with identical output bytes.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from conftest import make_int_array
from repro.core.host import host_prefix_sum
from repro.stream import (
    CheckpointError,
    CheckpointMismatchError,
    InjectedFailureError,
    StreamError,
    read_checkpoint,
    scan_file,
    write_checkpoint,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def write_input(tmp_path, values, name="in.bin"):
    path = tmp_path / name
    values.tofile(path)
    return path


class TestScanFile:
    def test_larger_than_chunk_budget(self, tmp_path, rng):
        values = make_int_array(rng, 50_000)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file(
            raw, out, dtype="int32", order=2, tuple_size=3,
            chunk_bytes=4096,  # 1024 elements -> ~49 chunks
        )
        expected = host_prefix_sum(values, order=2, tuple_size=3)
        assert np.array_equal(np.fromfile(out, dtype=np.int32), expected)
        assert result.counters.chunks == 49
        assert result.counters.bytes_out == values.nbytes
        assert result.engine_used == "host"

    def test_exclusive_and_op(self, tmp_path, rng):
        values = make_int_array(rng, 10_000, dtype=np.int64)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        scan_file(
            raw, out, dtype="int64", op="max", inclusive=False,
            chunk_bytes=8192,
        )
        expected = host_prefix_sum(values, op="max", inclusive=False)
        assert np.array_equal(np.fromfile(out, dtype=np.int64), expected)

    def test_chunk_not_multiple_of_tuple_stride(self, tmp_path, rng):
        # 1024-element chunks against tuple stride 3: every chunk edge
        # lands mid-tuple.
        values = make_int_array(rng, 9_999)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        scan_file(raw, out, dtype="int32", tuple_size=3, chunk_bytes=4096)
        expected = host_prefix_sum(values, tuple_size=3)
        assert np.array_equal(np.fromfile(out, dtype=np.int32), expected)

    def test_parallel_inner_engine(self, tmp_path, rng):
        from repro.parallel import ParallelSamScan

        values = make_int_array(rng, 100_000, dtype=np.int64)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        engine = ParallelSamScan(
            num_workers=2, min_parallel_elements=0, fallback="raise"
        )
        result = scan_file(
            raw, out, dtype="int64", order=2, engine=engine,
            chunk_bytes=1 << 17,
        )
        expected = host_prefix_sum(values, order=2)
        assert np.array_equal(np.fromfile(out, dtype=np.int64), expected)
        assert result.counters.delegated_stage_scans > 0

    def test_empty_file(self, tmp_path):
        raw = tmp_path / "empty.bin"
        raw.touch()
        out = tmp_path / "out.bin"
        result = scan_file(raw, out, dtype="int32")
        assert result.elements == 0
        assert out.stat().st_size == 0

    def test_misaligned_file_rejected(self, tmp_path):
        raw = tmp_path / "bad.bin"
        raw.write_bytes(b"\x00" * 10)  # not a multiple of 4
        with pytest.raises(ValueError, match="multiple"):
            scan_file(raw, tmp_path / "out.bin", dtype="int32")

    def test_bad_knobs_rejected(self, tmp_path, rng):
        raw = write_input(tmp_path, make_int_array(rng, 10))
        with pytest.raises(ValueError, match="chunk_bytes"):
            scan_file(raw, tmp_path / "o.bin", chunk_bytes=0)
        with pytest.raises(ValueError, match="checkpoint_every"):
            scan_file(raw, tmp_path / "o.bin", checkpoint_every=0)


class TestCheckpointResume:
    def run_interrupted(self, tmp_path, rng, n=40_000, fail_after=7, **kw):
        values = make_int_array(rng, n)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        ckpt = tmp_path / "job.ckpt"
        config = dict(
            dtype="int32", order=2, tuple_size=3, chunk_bytes=4096,
            checkpoint=ckpt, checkpoint_every=3,
        )
        config.update(kw)
        with pytest.raises(InjectedFailureError):
            scan_file(raw, out, fail_after_chunks=fail_after, **config)
        return values, raw, out, ckpt, config

    def test_interrupted_job_resumes_bit_identically(self, tmp_path, rng):
        values, raw, out, ckpt, config = self.run_interrupted(tmp_path, rng)
        assert ckpt.exists()
        # Partial output extends past the last checkpoint (7 chunks
        # written, checkpoint taken at 6) — resume must discard the
        # undurable tail.
        partial = out.stat().st_size
        assert partial == 7 * 4096

        result = scan_file(raw, out, resume=True, **config)
        expected = host_prefix_sum(values, order=2, tuple_size=3)
        assert np.array_equal(np.fromfile(out, dtype=np.int32), expected)
        assert result.resumed_from == 6 * 1024
        assert result.counters.resumes == 1
        # Counters are cumulative across the interruption: 6 chunks
        # persisted by the last checkpoint + 34 on resume (chunk 7's
        # work was lost with the crash and is replayed inside the 34).
        assert result.counters.chunks == 40
        assert not ckpt.exists()  # complete jobs clean up

    def test_resume_tolerates_corrupt_output_tail(self, tmp_path, rng):
        values, raw, out, ckpt, config = self.run_interrupted(tmp_path, rng)
        with open(out, "ab") as fh:  # garbage written during the "crash"
            fh.write(b"\xde\xad\xbe\xef" * 100)
        scan_file(raw, out, resume=True, **config)
        expected = host_prefix_sum(values, order=2, tuple_size=3)
        assert np.array_equal(np.fromfile(out, dtype=np.int32), expected)

    def test_resume_with_mismatched_config_rejected(self, tmp_path, rng):
        values, raw, out, ckpt, config = self.run_interrupted(tmp_path, rng)
        bad = dict(config, order=1)
        with pytest.raises(CheckpointMismatchError):
            scan_file(raw, out, resume=True, **bad)

    def test_resume_with_different_input_rejected(self, tmp_path, rng):
        values, raw, out, ckpt, config = self.run_interrupted(tmp_path, rng)
        other = write_input(tmp_path, make_int_array(rng, 50_000), "other.bin")
        with pytest.raises(CheckpointMismatchError, match="elements"):
            scan_file(other, out, resume=True, **config)

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path, rng):
        values = make_int_array(rng, 10_000)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file(
            raw, out, dtype="int32", chunk_bytes=4096,
            checkpoint=tmp_path / "never-written.ckpt", resume=True,
        )
        assert result.resumed_from == 0
        assert np.array_equal(
            np.fromfile(out, dtype=np.int32), host_prefix_sum(values)
        )

    def test_resume_with_missing_output_rejected(self, tmp_path, rng):
        values, raw, out, ckpt, config = self.run_interrupted(tmp_path, rng)
        out.unlink()
        with pytest.raises(StreamError, match="output"):
            scan_file(raw, out, resume=True, **config)

    def test_resume_on_different_chunk_size_and_engine(self, tmp_path, rng):
        # Chunk size and engine are not part of the carry state's
        # meaning — a resumed job may use different ones.
        values, raw, out, ckpt, config = self.run_interrupted(tmp_path, rng)
        config["chunk_bytes"] = 10_000  # not even tuple-aligned
        config["engine"] = "sam"
        scan_file(raw, out, resume=True, **config)
        expected = host_prefix_sum(values, order=2, tuple_size=3)
        assert np.array_equal(np.fromfile(out, dtype=np.int32), expected)

    def test_no_tmp_file_left_behind(self, tmp_path, rng):
        self.run_interrupted(tmp_path, rng)
        assert not list(tmp_path.glob("*.tmp"))

    def test_fresh_start_deletes_stale_checkpoint(self, tmp_path, rng):
        # A non-resume run must delete a leftover checkpoint up front.
        # Previously it survived until the run's own first checkpoint
        # write — so a crash *before* that point, followed by --resume,
        # would restore the stale offset against the new job's output
        # and silently corrupt it.
        values, raw, out, ckpt, config = self.run_interrupted(tmp_path, rng)
        assert ckpt.exists()
        # Fresh start (resume=False) that crashes before its first
        # checkpoint (fail at chunk 1, cadence every 3 chunks).
        with pytest.raises(InjectedFailureError):
            scan_file(raw, out, fail_after_chunks=1, **config)
        assert not ckpt.exists()  # the stale file must not have survived
        # Therefore resume starts from scratch and stays correct.
        result = scan_file(raw, out, resume=True, **config)
        assert result.resumed_from == 0
        expected = host_prefix_sum(values, order=2, tuple_size=3)
        assert np.array_equal(np.fromfile(out, dtype=np.int32), expected)


class TestCheckpointDurability:
    def test_write_checkpoint_fsyncs_directory(self, tmp_path, monkeypatch):
        # The rename is directory metadata: without fsyncing the
        # directory a crash after os.replace can roll the rename back.
        # Audit every fsync during a write and demand one of them was
        # on a directory fd opened on the checkpoint's parent.
        fsynced = []
        real_fsync = os.fsync

        def audit_fsync(fd):
            import stat as stat_mod

            mode = os.fstat(fd).st_mode
            fsynced.append("dir" if stat_mod.S_ISDIR(mode) else "file")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", audit_fsync)
        path = tmp_path / "sub" / "c.ckpt"
        path.parent.mkdir()
        write_checkpoint(path, {"kind": "repro-stream-checkpoint",
                                "version": 1})
        # tmp-file fsync first, then the parent directory after replace.
        assert fsynced == ["file", "dir"]
        assert json.loads(path.read_text())["kind"] == "repro-stream-checkpoint"

    def test_directory_fsync_failure_is_not_fatal(self, tmp_path, monkeypatch):
        # Platforms without directory fds (or filesystems rejecting
        # dir fsync) must degrade to the pre-fsync behavior, not fail
        # the checkpoint write.
        real_open = os.open

        def failing_open(path, flags, *a, **kw):
            if os.path.isdir(path):
                raise OSError("no directory fds here")
            return real_open(path, flags, *a, **kw)

        monkeypatch.setattr(os, "open", failing_open)
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, {"kind": "repro-stream-checkpoint",
                                "version": 1})
        assert path.exists()


class TestCheckpointFormat:
    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(path)
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(CheckpointError, match="not a repro"):
            read_checkpoint(path)

    def test_tampered_config_detected(self, tmp_path, rng):
        values, raw, out, ckpt, config = (
            TestCheckpointResume().run_interrupted(tmp_path, rng)
        )
        payload = read_checkpoint(ckpt)
        payload["session"]["config"]["order"] = 17  # hash now stale
        write_checkpoint(ckpt, payload)
        with pytest.raises(CheckpointError, match="integrity"):
            read_checkpoint(ckpt)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        write_checkpoint(
            path, {"kind": "repro-stream-checkpoint", "version": 999}
        )
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(path)


class TestResumeAfterKill:
    """A *real* kill: SIGKILL the CLI process mid-run, then resume."""

    @pytest.mark.parametrize("sig", [signal.SIGKILL])
    def test_sigkill_then_resume(self, tmp_path, rng, sig):
        values = make_int_array(rng, 1 << 20, dtype=np.int64)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        ckpt = tmp_path / "job.ckpt"
        args = [
            str(raw), str(out), "--dtype", "int64", "--order", "2",
            "--chunk-bytes", "16384", "--checkpoint", str(ckpt),
            "--checkpoint-every", "2",
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src")
            + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "stream", *args],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while (
                not ckpt.exists()
                and proc.poll() is None
                and time.monotonic() < deadline
            ):
                time.sleep(0.002)
            killed = proc.poll() is None
            if killed:
                proc.send_signal(sig)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait()

        # If the job somehow finished before we could kill it, the
        # checkpoint is gone and --resume simply redoes the scan; the
        # bit-identity assertion below still holds either way.
        from repro.__main__ import main

        assert main(["stream", *args, "--resume"]) == 0
        expected = host_prefix_sum(values, order=2)
        assert np.array_equal(np.fromfile(out, dtype=np.int64), expected)
        if killed:
            assert not ckpt.exists()


class TestThreadedAndAdaptive:
    """PR satellites: slab-threaded chunk scans and adaptive chunk sizing."""

    def test_threads_bit_identical_and_counted(self, tmp_path, rng):
        values = make_int_array(rng, 60_000, dtype=np.int64)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file(
            raw, out, dtype="int64", order=2, tuple_size=3,
            chunk_bytes=1 << 16, threads=4,
        )
        expected = host_prefix_sum(values, order=2, tuple_size=3)
        assert np.array_equal(np.fromfile(out, dtype=np.int64), expected)
        assert result.counters.threaded_scans > 0

    def test_adaptive_chunks_off_by_default(self, tmp_path, rng):
        values = make_int_array(rng, 50_000)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file(raw, out, dtype="int32", chunk_bytes=4096)
        assert result.counters.chunk_resizes == 0
        assert result.counters.chunks == 49

    def test_adaptive_chunks_grows_and_stays_correct(self, tmp_path, rng):
        values = make_int_array(rng, 200_000, dtype=np.int64)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        result = scan_file(
            raw, out, dtype="int64", order=1, tuple_size=2,
            chunk_bytes=1 << 12, adaptive_chunks=True,
        )
        expected = host_prefix_sum(values, tuple_size=2)
        assert np.array_equal(np.fromfile(out, dtype=np.int64), expected)
        # Tiny chunks scan far below the low-water mark, so sizing must
        # have kicked in (and fewer chunks than the fixed-size job).
        assert result.counters.chunk_resizes > 0
        assert result.counters.chunks < 200_000 * 8 // (1 << 12)

    def test_adaptive_chunks_via_cli(self, tmp_path, rng):
        from repro.__main__ import main

        values = make_int_array(rng, 30_000, dtype=np.int64)
        raw = write_input(tmp_path, values)
        out = tmp_path / "out.bin"
        assert main([
            "stream", str(raw), str(out), "--dtype", "int64",
            "--chunk-bytes", "4096", "--adaptive-chunks", "--threads", "2",
        ]) == 0
        expected = host_prefix_sum(values)
        assert np.array_equal(np.fromfile(out, dtype=np.int64), expected)
