"""Unit tests for dtype resolution and wraparound semantics."""

import numpy as np
import pytest

from repro.ops import as_dtype, is_integer_dtype, wraparound


class TestAsDtype:
    def test_by_name(self):
        assert as_dtype("int32") == np.int32
        assert as_dtype("float64") == np.float64

    def test_by_numpy_dtype(self):
        assert as_dtype(np.dtype(np.int64)) == np.int64

    def test_by_type_object(self):
        assert as_dtype(np.uint32) == np.uint32

    def test_unknown_name(self):
        with pytest.raises(TypeError, match="unsupported dtype"):
            as_dtype("int16")

    def test_unsupported_numpy_dtype(self):
        with pytest.raises(TypeError, match="unsupported dtype"):
            as_dtype(np.int8)


class TestIsIntegerDtype:
    def test_integers(self):
        assert is_integer_dtype(np.int32)
        assert is_integer_dtype("uint64")

    def test_floats(self):
        assert not is_integer_dtype(np.float32)


class TestWraparound:
    def test_in_range_passthrough(self):
        assert wraparound(42, np.int32) == 42
        assert wraparound(-42, np.int64) == -42

    def test_int32_overflow_wraps_negative(self):
        assert wraparound(2**31, np.int32) == -(2**31)

    def test_int32_large_positive(self):
        assert wraparound(2**32 + 5, np.int32) == 5

    def test_int64_overflow(self):
        assert wraparound(2**63, np.int64) == -(2**63)

    def test_uint32_wraps_modulo(self):
        assert wraparound(2**32 + 7, np.uint32) == 7
        assert wraparound(-1, np.uint32) == 2**32 - 1

    def test_negative_int32(self):
        assert wraparound(-(2**31) - 1, np.int32) == 2**31 - 1

    def test_float_passthrough(self):
        assert wraparound(1.5, np.float64) == 1.5

    def test_returns_numpy_scalar(self):
        assert isinstance(wraparound(1, np.int32), np.int32)
