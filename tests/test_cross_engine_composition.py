"""Cross-engine composition tests: the lifted/segmented operators, the
SAT tuple trick, and custom operators must work through *every* engine,
not just SAM — the generalizations are engine-agnostic."""

import numpy as np
import pytest

from conftest import make_int_array, small_sam
from repro.apps import summed_area_table
from repro.apps.segmented import segment_flags_from_lengths, segmented_scan
from repro.baselines import (
    DecoupledLookbackScan,
    ReduceThenScan,
    StreamScan,
    ThreePhaseScan,
)
from repro.ops import AssociativeOp
from repro.reference import prefix_sum_serial

KW = dict(threads_per_block=64, items_per_thread=2)


def all_engines():
    return {
        "sam": small_sam(),
        "lookback": DecoupledLookbackScan(**KW),
        "reduce_scan": ReduceThenScan(**KW),
        "three_phase": ThreePhaseScan(**KW),
        "streamscan": StreamScan(**KW),
    }


class TestSegmentedThroughEveryEngine:
    @pytest.mark.parametrize("name", sorted(all_engines()))
    def test_lifted_monoid_runs_everywhere(self, rng, name):
        values = rng.integers(-50, 50, 400).astype(np.int32)
        flags = segment_flags_from_lengths([150, 100, 150])
        engine = all_engines()[name]
        got = segmented_scan(values, flags, method="lifted", engine=engine)
        expected = segmented_scan(values, flags, method="subtract")
        assert np.array_equal(got, expected), name


class TestSatThroughEveryEngine:
    @pytest.mark.parametrize("name", sorted(all_engines()))
    def test_column_pass_as_tuple_scan(self, rng, name):
        image = rng.integers(0, 100, (7, 12)).astype(np.int32)
        engine = all_engines()[name]
        if name == "lookback":
            # lookback's tuple path needs divisible sizes; 7*12 % 12 == 0.
            pass
        sat = summed_area_table(image, engine=engine)
        assert np.array_equal(sat, image.cumsum(axis=0).cumsum(axis=1)), name


class TestCustomOperatorsEverywhere:
    @pytest.mark.parametrize("name", sorted(all_engines()))
    def test_custom_python_operator(self, rng, name):
        # An operator with no numpy ufunc: keep-left-if-even-else-combine.
        def fn(a, b):
            return np.where(np.asarray(b) % 2 == 0, a + b, b)

        custom = AssociativeOp("even_add", fn=fn, identity_fn=lambda dt: 0)
        # Not actually associative for all inputs — restrict to inputs
        # where it is (all-even values make it plain addition).
        values = (rng.integers(-50, 50, 300) * 2).astype(np.int64)
        engine = all_engines()[name]
        got = engine.run(values, op=custom)
        expected = prefix_sum_serial(values, op="add")
        assert np.array_equal(got.values, expected), name


class TestGeometryOverrides:
    @pytest.mark.parametrize("threads", [32, 96, 256])
    def test_nonstandard_block_sizes(self, rng, threads):
        values = make_int_array(rng, 3000)
        engine = small_sam(threads_per_block=threads, items_per_thread=1)
        assert np.array_equal(engine.run(values).values, prefix_sum_serial(values))

    def test_threads_must_be_warp_multiple_at_launch(self, rng):
        from repro.gpusim.kernel import launch_kernel
        from repro.gpusim.spec import TITAN_X

        with pytest.raises(ValueError, match="multiple"):
            launch_kernel(
                lambda ctx: None, TITAN_X, num_blocks=1, threads_per_block=40
            )

    @pytest.mark.parametrize("items", [1, 3, 16])
    def test_items_per_thread_values(self, rng, items):
        values = make_int_array(rng, 5000)
        engine = small_sam(items_per_thread=items)
        result = engine.run(values, order=2)
        assert np.array_equal(result.values, prefix_sum_serial(values, order=2))
        assert result.chunk_elements == 64 * items
