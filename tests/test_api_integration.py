"""Public-API tests and cross-module integration scenarios."""

import numpy as np
import pytest

import repro
from conftest import make_int_array, small_sam
from repro.baselines import DecoupledLookbackScan, ReduceThenScan, ThreePhaseScan
from repro.compression import DeltaCodec
from repro.reference import prefix_sum_serial

PAPER_INPUT = np.array([1, 2, 3, 4, 5, 2, 4, 6, 8, 10], dtype=np.int32)


class TestPublicApi:
    def test_paper_example(self):
        deltas = repro.delta_encode(PAPER_INPUT)
        assert deltas.tolist() == [1, 1, 1, 1, 1, -3, 2, 2, 2, 2]
        assert repro.prefix_sum(deltas).tolist() == PAPER_INPUT.tolist()

    def test_prefix_sum_defaults(self):
        out = repro.prefix_sum(np.array([1, 1, 1], dtype=np.int32))
        assert out.tolist() == [1, 2, 3]

    def test_scan_by_name(self):
        out = repro.scan(np.array([3, 1, 4], dtype=np.int32), op="max")
        assert out.tolist() == [3, 3, 4]

    def test_exclusive_flag(self):
        out = repro.prefix_sum(np.array([5, 5], dtype=np.int32), inclusive=False)
        assert out.tolist() == [0, 5]

    def test_version_exported(self):
        assert repro.__version__ == "1.0.0"

    def test_docstring_examples_run(self):
        import doctest

        import repro.api

        results = doctest.testmod(repro.api)
        assert results.failed == 0
        assert results.attempted >= 4


class TestEngineAgreement:
    """All four engines and the host path agree bit-for-bit."""

    @pytest.mark.parametrize("order,tuple_size", [(1, 1), (2, 1), (1, 3), (2, 2)])
    def test_five_way_agreement(self, rng, order, tuple_size):
        n = 4000 - 4000 % tuple_size
        values = make_int_array(rng, n, dtype=np.int64)
        expected = prefix_sum_serial(values, order=order, tuple_size=tuple_size)
        kw = dict(threads_per_block=64, items_per_thread=2)
        engines = [
            small_sam(),
            small_sam(carry_scheme="chained"),
            ThreePhaseScan(**kw),
            ReduceThenScan(**kw),
            DecoupledLookbackScan(**kw),
        ]
        host = repro.prefix_sum(values, order=order, tuple_size=tuple_size)
        assert np.array_equal(host, expected)
        for engine in engines:
            result = engine.run(values, order=order, tuple_size=tuple_size)
            assert np.array_equal(result.values, expected), type(engine).__name__


class TestTrafficHierarchy:
    def test_paper_traffic_ordering(self, rng):
        """SAM == CUB (2n) < MGPU (3n) < Thrust/CUDPP (4n)."""
        values = make_int_array(rng, 16384)
        kw = dict(threads_per_block=64, items_per_thread=2)
        sam = small_sam().run(values).words_per_element()
        cub = DecoupledLookbackScan(**kw).run(values).words_per_element()
        mgpu = ReduceThenScan(**kw).run(values).words_per_element()
        thrust = ThreePhaseScan(**kw).run(values).words_per_element()
        assert abs(sam - cub) < 0.3
        assert sam < mgpu < thrust
        assert round(mgpu) == 3 and round(thrust) == 4

    def test_higher_order_traffic_divergence(self, rng):
        """SAM stays ~2n at order 8; iterated CUB grows to ~16n."""
        values = make_int_array(rng, 16384)
        sam8 = small_sam().run(values, order=8).words_per_element()
        cub8 = DecoupledLookbackScan(
            threads_per_block=64, items_per_thread=2
        ).run(values, order=8).words_per_element()
        assert sam8 < 3.0
        assert cub8 > 14.0


class TestEndToEndCompression:
    def test_compress_then_parallel_decode(self, rng):
        # The full motivating pipeline: model + coder on the host,
        # decode via the generalized prefix sum on the simulated GPU.
        t = np.arange(12000)
        signal = (500 * np.sin(t / 150.0) + t * 0.2).astype(np.int32)
        codec = DeltaCodec(decode_engine=small_sam())
        blob = codec.compress(signal)
        assert blob.ratio() > 2.0
        assert np.array_equal(codec.decompress(blob), signal)

    def test_interleaved_stream_uses_tuple_model(self, rng):
        xy = np.empty(10000, dtype=np.int32)
        xy[0::2] = np.cumsum(rng.integers(-3, 4, 5000)).astype(np.int32)
        xy[1::2] = (10**6 + np.cumsum(rng.integers(-3, 4, 5000))).astype(np.int32)
        codec = DeltaCodec(decode_engine=small_sam())
        naive = codec.compress(xy, order=1, tuple_size=1)
        tuple_aware = codec.compress(xy, order=1, tuple_size=2)
        assert tuple_aware.nbytes < naive.nbytes
        assert np.array_equal(codec.decompress(tuple_aware), xy)
