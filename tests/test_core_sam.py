"""Oracle and behavioral tests for SAM on the GPU simulator."""

import numpy as np
import pytest

from conftest import BOUNDARY_SIZES, make_int_array, small_sam
from repro.core.sam import SamResult, SamScan
from repro.gpusim.spec import K40, TITAN_X
from repro.reference import exclusive_scan_serial, prefix_sum_serial


class TestOracleGrid:
    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_conventional_prefix_sum(self, rng, n):
        values = make_int_array(rng, n)
        result = small_sam().run(values)
        assert np.array_equal(result.values, prefix_sum_serial(values))

    @pytest.mark.parametrize("order", [1, 2, 3, 5, 8])
    def test_higher_orders(self, rng, order):
        values = make_int_array(rng, 3000, dtype=np.int64)
        result = small_sam().run(values, order=order)
        assert np.array_equal(result.values, prefix_sum_serial(values, order=order))

    @pytest.mark.parametrize("tuple_size", [1, 2, 3, 4, 5, 7, 8])
    def test_tuple_sizes(self, rng, tuple_size):
        values = make_int_array(rng, 2999)  # deliberately not divisible
        result = small_sam().run(values, tuple_size=tuple_size)
        assert np.array_equal(
            result.values, prefix_sum_serial(values, tuple_size=tuple_size)
        )

    @pytest.mark.parametrize("order", [2, 3])
    @pytest.mark.parametrize("tuple_size", [2, 5])
    def test_combined_order_and_tuple(self, rng, order, tuple_size):
        # The paper's Section 6 notes SAM "fully supports higher-order
        # prefix sums and scans with tuple sizes above one" combined.
        values = make_int_array(rng, 2500, dtype=np.int64)
        result = small_sam().run(values, order=order, tuple_size=tuple_size)
        expected = prefix_sum_serial(values, order=order, tuple_size=tuple_size)
        assert np.array_equal(result.values, expected)

    @pytest.mark.parametrize("op", ["max", "min", "xor", "mul", "and", "or"])
    def test_other_operators(self, rng, op):
        values = make_int_array(rng, 2000)
        result = small_sam().run(values, op=op)
        assert np.array_equal(result.values, prefix_sum_serial(values, op=op))

    @pytest.mark.parametrize("dtype", [np.int32, np.int64, np.uint32, np.uint64])
    def test_dtypes(self, rng, dtype):
        values = rng.integers(0, 1000, 2000).astype(dtype)
        result = small_sam().run(values, order=2)
        assert result.values.dtype == dtype
        assert np.array_equal(result.values, prefix_sum_serial(values, order=2))

    def test_float_scan(self, rng):
        # Floating-point addition is only pseudo-associative: SAM's
        # blocked summation associates differently from the serial
        # left fold, so results agree within rounding — but SAM itself
        # is deterministic on a given schedule AND across schedules
        # (Section 3.1: unlike CUB's timing-dependent lookback, SAM
        # always combines the same fixed set of carries).
        values = rng.random(1000).astype(np.float64)
        result = small_sam().run(values)
        assert np.allclose(result.values, prefix_sum_serial(values), rtol=1e-12)
        again = small_sam().run(values)
        hostile = small_sam(policy="reversed").run(values)
        assert np.array_equal(result.values, again.values)
        assert np.array_equal(result.values, hostile.values)

    def test_exclusive_variants(self, rng):
        values = make_int_array(rng, 1500)
        assert np.array_equal(
            small_sam().run(values, inclusive=False).values,
            exclusive_scan_serial(values),
        )
        assert np.array_equal(
            small_sam().run(values, order=2, tuple_size=3, inclusive=False).values,
            prefix_sum_serial(values, order=2, tuple_size=3, inclusive=False),
        )


class TestCarrySchemes:
    @pytest.mark.parametrize("scheme", ["decoupled", "chained"])
    def test_schemes_agree_with_reference(self, rng, scheme):
        values = make_int_array(rng, 4000)
        result = small_sam(carry_scheme=scheme).run(values, order=2, tuple_size=2)
        expected = prefix_sum_serial(values, order=2, tuple_size=2)
        assert np.array_equal(result.values, expected)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError, match="carry scheme"):
            small_sam(carry_scheme="telepathic")

    def test_chained_does_fewer_carry_additions(self, rng):
        # The chained scheme is O(n): one addition per chunk.  The
        # decoupled scheme trades up to k-1 redundant additions per
        # chunk for latency hiding (Section 2.5).
        values = make_int_array(rng, 8000)
        decoupled = small_sam(num_blocks=8, items_per_thread=1).run(values)
        chained = small_sam(num_blocks=8, items_per_thread=1, carry_scheme="chained").run(values)
        assert chained.stats.carry_additions < decoupled.stats.carry_additions


class TestSchedulePolicies:
    @pytest.mark.parametrize("policy", ["round_robin", "reversed", "rotating", "random"])
    def test_result_is_schedule_independent(self, rng, policy):
        values = make_int_array(rng, 5000)
        result = small_sam(policy=policy, num_blocks=6, items_per_thread=1).run(
            values, order=2, tuple_size=3
        )
        assert np.array_equal(
            result.values, prefix_sum_serial(values, order=2, tuple_size=3)
        )

    def test_adversarial_schedule_costs_more_polls(self, rng):
        values = make_int_array(rng, 6000)
        friendly = small_sam(policy="round_robin", num_blocks=6).run(values)
        hostile = small_sam(policy="reversed", num_blocks=6).run(values)
        assert np.array_equal(friendly.values, hostile.values)
        assert (
            hostile.stats.failed_flag_polls >= friendly.stats.failed_flag_polls
        )

    def test_determinism_across_runs(self, rng):
        values = make_int_array(rng, 3000)
        a = small_sam().run(values, order=3)
        b = small_sam().run(values, order=3)
        assert np.array_equal(a.values, b.values)
        assert a.stats.global_words_total == b.stats.global_words_total


class TestTrafficClaims:
    def test_single_kernel_launch(self, rng):
        values = make_int_array(rng, 4000)
        result = small_sam().run(values, order=4)
        assert result.stats.kernel_launches == 1

    def test_2n_data_traffic(self, rng):
        # The headline claim: each element is read once and written
        # once; only auxiliary traffic comes on top.
        values = make_int_array(rng, 8192)
        result = small_sam().run(values)
        assert 2.0 <= result.words_per_element() < 2.4

    def test_traffic_constant_in_order(self, rng):
        # Section 2.4: "the number of main-memory accesses is
        # independent of the order" (data arrays; aux flags/sums add a
        # small per-iteration term).
        values = make_int_array(rng, 8192)
        r1 = small_sam().run(values, order=1)
        r8 = small_sam().run(values, order=8)
        data_words_1 = 2 * len(values)
        assert r1.stats.global_words_total < data_words_1 * 1.2
        assert r8.stats.global_words_total < data_words_1 * 1.6

    def test_register_use_independent_of_tuple_size(self, rng):
        # SAM's loads stay fully coalesced regardless of s: transaction
        # counts must not grow with the tuple size (Section 2.3).
        values = make_int_array(rng, 5120)
        t1 = small_sam().run(values, tuple_size=1).stats.global_read_transactions
        t8 = small_sam().run(values, tuple_size=8).stats.global_read_transactions
        assert t8 <= t1 * 1.2

    def test_aux_arrays_are_o1(self, rng):
        # Circular buffers: aux allocation size depends on k, never n.
        small = small_sam(num_blocks=4).run(make_int_array(rng, 2000))
        large = small_sam(num_blocks=4).run(make_int_array(rng, 20000))
        assert small.num_chunks < large.num_chunks
        # Same engine config -> same capacity; verified via stats ratio:
        assert large.words_per_element() <= small.words_per_element() + 0.1


class TestConfigurationAndErrors:
    def test_empty_input(self):
        result = small_sam().run(np.array([], dtype=np.int32))
        assert len(result.values) == 0
        assert result.num_chunks == 0

    def test_rejects_2d(self, rng):
        with pytest.raises(ValueError, match="1-D"):
            small_sam().run(np.zeros((3, 3), dtype=np.int32))

    def test_rejects_bad_order(self, rng):
        with pytest.raises(ValueError, match="order"):
            small_sam().run(np.zeros(4, dtype=np.int32), order=0)

    def test_rejects_bad_tuple(self):
        with pytest.raises(ValueError, match="tuple_size"):
            small_sam().run(np.zeros(4, dtype=np.int32), tuple_size=0)

    def test_rejects_bad_fidelity(self):
        with pytest.raises(ValueError, match="fidelity"):
            small_sam(fidelity="psychic")

    @pytest.mark.parametrize("tuple_size", [2, 3, 5, 8])
    def test_warp_fidelity_supports_tuples(self, rng, tuple_size):
        # Section 2.3's warp-level mechanics: strided shuffle scans and
        # modulo lane lookups, validated against the vector path.
        values = make_int_array(rng, 2000)
        warp = small_sam(fidelity="warp").run(values, tuple_size=tuple_size)
        vector = small_sam().run(values, tuple_size=tuple_size)
        assert np.array_equal(warp.values, vector.values)
        assert warp.stats.shuffles > 0

    def test_warp_fidelity_matches_vector(self, rng):
        values = make_int_array(rng, 2048)
        warp = small_sam(fidelity="warp").run(values, order=2)
        vector = small_sam().run(values, order=2)
        assert np.array_equal(warp.values, vector.values)
        assert warp.stats.shuffles > 0
        assert warp.stats.barriers > 0

    def test_num_blocks_defaults_to_spec(self, rng):
        values = make_int_array(rng, 200_000)
        engine = SamScan(spec=K40, threads_per_block=128, items_per_thread=8)
        result = engine.run(values)
        assert result.num_blocks == K40.persistent_blocks
        assert np.array_equal(result.values, prefix_sum_serial(values))

    def test_blocks_capped_by_chunks(self, rng):
        values = make_int_array(rng, 100)
        result = small_sam(num_blocks=16).run(values)
        assert result.num_blocks == 1  # single chunk -> single block

    def test_result_metadata(self, rng):
        values = make_int_array(rng, 500)
        result = small_sam().run(values, order=2, tuple_size=3, op="max")
        assert isinstance(result, SamResult)
        assert result.order == 2
        assert result.tuple_size == 3
        assert result.op_name == "max"
        assert result.carry_scheme == "decoupled"
        assert result.chunk_elements == 128

    def test_input_not_mutated(self, rng):
        values = make_int_array(rng, 1000)
        backup = values.copy()
        small_sam().run(values, order=2)
        assert np.array_equal(values, backup)


class TestBufferSizing:
    def test_larger_buffer_factor_also_correct(self, rng):
        values = make_int_array(rng, 6000)
        result = small_sam(buffer_factor=5).run(values, order=2)
        assert np.array_equal(result.values, prefix_sum_serial(values, order=2))

    def test_buffer_factor_too_small_rejected(self):
        with pytest.raises(ValueError, match="buffer_factor"):
            small_sam(buffer_factor=2).run(np.zeros(100, dtype=np.int32))

    def test_many_generations_of_reuse(self, rng):
        # Enough chunks to wrap the circular buffers several times.
        engine = SamScan(
            spec=TITAN_X, threads_per_block=32, items_per_thread=1, num_blocks=2
        )
        values = make_int_array(rng, 32 * 2 * 40)  # 80 chunks, capacity 8
        result = engine.run(values, order=2)
        assert np.array_equal(result.values, prefix_sum_serial(values, order=2))
