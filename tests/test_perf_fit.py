"""Tests for the first-principles calibration fit."""

import pytest

from conftest import small_sam
from repro.gpusim.spec import C1060, K40, TITAN_X
from repro.perf.fit import (
    fit_memory_floor,
    fit_nh,
    measure_traffic_words,
    verify_calibration,
)


class TestMemoryFloor:
    def test_titan_x_32bit_floor_matches_paper(self):
        # 264 GB/s over 8 bytes/item -> 33 G items/s -> 30.3 ps.
        floor = fit_memory_floor(TITAN_X, 32)
        assert floor.achieved_gbs == pytest.approx(264.1, abs=0.5)
        assert floor.inv_ps == pytest.approx(30.3, abs=0.2)

    def test_64bit_floor_doubles(self):
        f32 = fit_memory_floor(TITAN_X, 32)
        f64 = fit_memory_floor(TITAN_X, 64)
        assert f64.inv_ps == pytest.approx(2 * f32.inv_ps, rel=1e-9)

    def test_traffic_coefficient_scales_floor(self):
        sam = fit_memory_floor(TITAN_X, 32, traffic_words=2.0)
        thrust = fit_memory_floor(TITAN_X, 32, traffic_words=4.0)
        assert thrust.inv_ps == pytest.approx(2 * sam.inv_ps, rel=1e-9)

    def test_no_bandwidth_data_rejected(self):
        with pytest.raises(ValueError, match="no bandwidth"):
            fit_memory_floor(C1060, 32)

    def test_measured_traffic_feeds_the_fit(self):
        words = measure_traffic_words(lambda: small_sam())
        floor = fit_memory_floor(TITAN_X, 32, traffic_words=words)
        # Simulator-measured ~2.06 words/element -> floor within a few
        # percent of the ideal-2n value.
        assert floor.inv_ps == pytest.approx(30.3 * words / 2.0, rel=0.01)
        assert 30.0 <= floor.inv_ps <= 32.5


class TestNhFit:
    def test_recovers_known_nh(self):
        inv_ps = 30.3
        nh = 8.86e6
        n = 2**22
        throughput = 1.0 / (inv_ps * 1e-12 * (1 + (nh / n) ** 0.5))
        fitted = fit_nh(inv_ps, n, throughput)
        assert fitted == pytest.approx(nh, rel=1e-6)

    def test_anchor_above_asymptote_rejected(self):
        with pytest.raises(ValueError, match="exceeds the asymptote"):
            fit_nh(30.3, 2**20, 1e12)


class TestShippedCalibration:
    def test_every_floor_is_physical(self):
        errors = verify_calibration()
        assert len(errors) == 4
        assert max(errors.values()) <= 0.02
