"""Floating-point scans across every engine.

Section 3.1's determinism discussion: float addition is only
pseudo-associative, so different blockings round differently — but each
engine must (a) agree with the serial reference within rounding, and
(b) be exactly reproducible run-to-run and across schedules (on real
hardware CUB loses (b); in the deterministic simulator everyone keeps
it, which the lookback walk-length counters qualify).
"""

import numpy as np
import pytest

from conftest import small_sam
from repro.baselines import (
    DecoupledLookbackScan,
    ReduceThenScan,
    StreamScan,
    ThreePhaseScan,
)
from repro.reference import prefix_sum_serial

KW = dict(threads_per_block=64, items_per_thread=2)


def engines():
    return {
        "sam": small_sam(),
        "lookback": DecoupledLookbackScan(**KW),
        "reduce_scan": ReduceThenScan(**KW),
        "three_phase": ThreePhaseScan(**KW),
        "streamscan": StreamScan(**KW),
    }


@pytest.mark.parametrize("name", sorted(engines()))
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_float_scan_close_to_serial(rng, name, dtype):
    values = rng.random(3000).astype(dtype)
    result = engines()[name].run(values)
    expected = prefix_sum_serial(values)
    rtol = 1e-4 if dtype == np.float32 else 1e-10
    assert np.allclose(result.values, expected, rtol=rtol)


@pytest.mark.parametrize("name", sorted(engines()))
def test_float_scan_is_reproducible(rng, name):
    values = rng.random(2000)
    first = engines()[name].run(values).values
    second = engines()[name].run(values).values
    assert np.array_equal(first, second)


def test_sam_float_identical_across_schedules(rng):
    # SAM combines a fixed set of carries in a fixed order, so even the
    # block schedule cannot change float results (§3.1's contrast with
    # CUB's timing-dependent lookback).
    values = rng.random(4000)
    outputs = [
        small_sam(policy=policy, num_blocks=6).run(values).values
        for policy in ("round_robin", "reversed", "rotating", "random")
    ]
    for other in outputs[1:]:
        assert np.array_equal(outputs[0], other)


def test_float_tuple_and_order(rng):
    values = rng.random(1500)
    result = small_sam().run(values, order=2, tuple_size=3)
    expected = prefix_sum_serial(values, order=2, tuple_size=3)
    assert np.allclose(result.values, expected, rtol=1e-9)


def test_float32_accumulation_error_is_bounded(rng):
    # Blocked summation's error vs the serial fold stays tiny relative
    # to the running magnitude.
    values = rng.random(50_000).astype(np.float32)
    result = small_sam(items_per_thread=8).run(values)
    expected = np.cumsum(values.astype(np.float64))
    relative = np.abs(result.values.astype(np.float64) - expected) / expected
    assert relative.max() < 1e-3
