"""Tests pinning the GPU specs to the paper's Table 1 and Section 4."""

import pytest

from repro.gpusim.spec import ALL_GPUS, C1060, K40, M2090, TITAN_X


class TestTable1:
    def test_row_order(self):
        assert [g.name for g in ALL_GPUS] == ["C1060", "M2090", "K40", "Titan X"]

    @pytest.mark.parametrize(
        "spec, m, b, t, r",
        [
            (C1060, 30, 2, 512, 16),
            (M2090, 16, 2, 768, 21.3),
            (K40, 15, 2, 1024, 32),
            (TITAN_X, 24, 2, 1024, 32),
        ],
        ids=lambda x: getattr(x, "name", x),
    )
    def test_hardware_parameters(self, spec, m, b, t, r):
        assert spec.sm_count == m
        assert spec.blocks_per_sm == b
        assert spec.threads_per_block == t
        assert spec.registers_per_thread == r

    @pytest.mark.parametrize(
        "spec, af",
        [(C1060, 7.32), (M2090, 1.96), (K40, 0.92), (TITAN_X, 1.46)],
        ids=lambda x: getattr(x, "name", x),
    )
    def test_architectural_factor_matches_paper(self, spec, af):
        assert spec.architectural_factor_x1000 == pytest.approx(af, abs=0.02)


class TestPersistentBlocks:
    def test_paper_k_values(self):
        # Section 2.2: "30 and 48 on our GPUs".
        assert K40.persistent_blocks == 30
        assert TITAN_X.persistent_blocks == 48


class TestTestbed:
    def test_titan_x_section4(self):
        assert TITAN_X.cores == 3072
        assert TITAN_X.peak_bandwidth_gbs == 336.0
        assert TITAN_X.l2_bytes == 2 * 1024 * 1024
        assert TITAN_X.max_resident_threads == 49152

    def test_k40_section4(self):
        assert K40.cores == 2880
        assert K40.peak_bandwidth_gbs == 288.0
        assert K40.max_resident_threads == 30720

    def test_clock_ratios_drive_section51_argument(self):
        # "the K40's memory is clocked 4.0 times faster than its
        # processing elements but the Titan X's only 3.2 times".
        assert K40.compute_to_memory_clock_ratio == pytest.approx(4.0, abs=0.05)
        assert TITAN_X.compute_to_memory_clock_ratio == pytest.approx(3.2, abs=0.05)

    def test_older_gpus_have_no_testbed_data(self):
        assert C1060.peak_bandwidth_gbs == 0.0
        assert C1060.compute_to_memory_clock_ratio == 0.0
