"""The execution planner (:mod:`repro.plan`).

Covers the decision layer end to end: workload/machine descriptors,
the calibration store's robustness contract (cold cache, corrupt file,
disabled), the candidate gating that makes every plan bit-identical to
the serial reference by construction, the online feedback loop, the
flag-less ``repro.scan`` / ``repro.scan_file`` dispatch, resume
pinning, ``explain``, and the ``planner_*`` counter plumbing.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

import repro
from repro.plan import (
    PLANNER_COUNTERS,
    TINY_BYTES,
    CalibrationStore,
    Machine,
    Workload,
    auto_scan,
    explain_scan,
    get_store,
    machine_snapshot,
    plan_file_scan,
    plan_scan,
    session_threads,
)
from repro.plan.calibration import _reset_store_memo
from repro.plan.workload import _reset_machine_memo
from repro.reference import prefix_sum_serial
from repro.stream.counters import StreamCounters

from conftest import make_int_array


@pytest.fixture(autouse=True)
def isolated_planner(tmp_path, monkeypatch):
    """Every test gets its own calibration file and fresh memos."""
    monkeypatch.setenv("REPRO_PLAN_CACHE", str(tmp_path / "calibration.json"))
    _reset_store_memo()
    _reset_machine_memo()
    yield
    _reset_store_memo()
    _reset_machine_memo()


def fake_machine(cpu_count=8, cutover=1 << 20) -> Machine:
    return Machine(
        cpu_count=cpu_count,
        block_bytes=128 << 10,
        parallel_cutover_bytes=cutover,
        tuning_source="test",
    )


# -- Workload / Machine descriptors -----------------------------------------


class TestWorkload:
    def test_from_array_fields(self):
        w = Workload.from_array(
            np.ones(1000, dtype=np.int64), op="max", order=2, tuple_size=4
        )
        assert w.nbytes == 8000
        assert w.dtype == "int64"
        assert w.op == "max"
        assert (w.order, w.tuple_size) == (2, 4)
        assert w.source == "memory"
        assert w.integer and w.vectorized and w.contiguous

    def test_float_and_looped_ops_are_not_parallel_safe(self):
        from repro.ops import AssociativeOp

        f = Workload.from_array(np.ones(10, dtype=np.float64))
        assert not f.integer
        custom = AssociativeOp(
            "local_second", fn=lambda a, b: b, identity_fn=lambda dt: 0
        )
        m = Workload.from_array(np.ones(10, dtype=np.int64), op=custom)
        assert not m.vectorized  # unregistered op: looped, serial-only

    def test_calibration_key_buckets_by_log2_size(self):
        small = Workload(nbytes=48 << 20, dtype="int64")
        near = Workload(nbytes=60 << 20, dtype="int64")
        far = Workload(nbytes=6 << 10, dtype="int64")
        assert small.calibration_key("serial") == near.calibration_key("serial")
        assert small.calibration_key("serial") != far.calibration_key("serial")
        assert "serial|memory|int64|add|q1|s1|b" in small.calibration_key("serial")

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload(nbytes=-1, dtype="int64")
        with pytest.raises(ValueError):
            Workload(nbytes=1, dtype="int64", order=0)
        with pytest.raises(ValueError):
            Workload(nbytes=1, dtype="int64", source="tape")

    def test_machine_snapshot_is_memoized(self):
        a = machine_snapshot("int64")
        b = machine_snapshot("int64")
        assert a is b
        assert a.cpu_count >= 1


# -- calibration store robustness -------------------------------------------


class TestCalibrationStore:
    def test_cold_cache_is_a_miss_not_an_error(self, tmp_path):
        store = CalibrationStore(str(tmp_path / "missing.json"))
        assert store.throughput("serial|memory|int64|add|q1|s1|b20") is None
        assert store.samples("anything") == 0

    def test_corrupt_store_ignored_not_fatal(self, tmp_path):
        path = tmp_path / "corrupt.json"
        for garbage in ("{truncated", "[]", '{"version": 99, "entries": 1}',
                        '{"version": 1, "entries": {"k": {"bad": true}}}'):
            path.write_text(garbage)
            _reset_store_memo()
            store = CalibrationStore(str(path))
            assert store.throughput("k") is None
            # ... and observing over the corpse works (overwrites it).
            assert store.observe("k", 1e9)
            assert store.throughput("k") == pytest.approx(1e9)

    def test_ewma_feedback_converges(self, tmp_path):
        store = CalibrationStore(str(tmp_path / "c.json"))
        store.observe("key", 1e9)
        for _ in range(20):
            store.observe("key", 4e9)
        assert store.throughput("key") == pytest.approx(4e9, rel=0.05)
        assert store.samples("key") == 21

    def test_persisted_across_instances(self, tmp_path):
        path = str(tmp_path / "c.json")
        CalibrationStore(path).observe("key", 2e9)
        assert CalibrationStore(path).throughput("key") == pytest.approx(2e9)

    def test_converged_buckets_skip_the_disk_write(self, tmp_path):
        path = tmp_path / "c.json"
        store = CalibrationStore(str(path))
        for _ in range(5):
            store.observe("key", 1e9)  # EWMA settles immediately
        before = path.read_text()
        store.observe("key", 1.001e9)  # < 2% movement: memory only
        assert path.read_text() == before

    def test_tune_disable_turns_calibration_off(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_DISABLE", "1")
        store = CalibrationStore(str(tmp_path / "c.json"))
        assert not store.observe("key", 1e9)
        assert store.throughput("key") is None
        assert not (tmp_path / "c.json").exists()

    def test_unwritable_store_degrades_to_memory(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        store = CalibrationStore(str(blocker / "sub" / "calibration.json"))
        assert store.observe("key", 1e9)  # persist fails silently
        assert store.throughput("key") == pytest.approx(1e9)


# -- planning decisions ------------------------------------------------------


class TestPlanScan:
    def test_empty_and_tiny_stay_serial(self):
        before = PLANNER_COUNTERS.tiny_shortcuts
        for n in (0, 1, 100, TINY_BYTES // 8):
            plan = plan_scan(Workload(nbytes=n * 8, dtype="int64"))
            assert plan.chosen.strategy == "serial"
            assert plan.store is None  # no store consult on the fast path
        assert PLANNER_COUNTERS.tiny_shortcuts == before + 4

    def test_cold_cache_uses_model_and_safe_default(self):
        w = Workload(nbytes=8 << 20, dtype="int64")
        plan = plan_scan(w, machine=fake_machine(cpu_count=1))
        assert plan.chosen.strategy == "serial"
        assert plan.chosen.throughput_source == "model"

    def test_multicore_machine_prices_the_threaded_ladder(self):
        w = Workload(nbytes=64 << 20, dtype="int64")
        plan = plan_scan(w, machine=fake_machine(cpu_count=8))
        labels = [c.label for c in plan.candidates]
        assert "serial" in labels
        assert any(l.startswith("threaded:") for l in labels)
        assert "parallel:8" in labels
        assert plan.chosen.strategy == "threaded"  # model: slabs win at 64 MiB

    def test_floats_and_looped_ops_only_get_serial(self):
        for w in (
            Workload(nbytes=64 << 20, dtype="float64"),
            Workload(nbytes=64 << 20, dtype="int64", op="local_unregistered"),
            Workload(nbytes=64 << 20, dtype="int64", contiguous=False),
        ):
            plan = plan_scan(w, machine=fake_machine(cpu_count=8))
            assert [c.strategy for c in plan.candidates] == ["serial"]

    def test_single_core_file_job_never_proposes_sharding(self):
        w = Workload(nbytes=64 << 20, dtype="int64", source="file")
        plan = plan_scan(w, machine=fake_machine(cpu_count=1))
        assert [c.strategy for c in plan.candidates] == ["stream"]

    def test_multicore_file_job_prices_shards(self):
        w = Workload(nbytes=64 << 20, dtype="int64", source="file")
        plan = plan_scan(w, machine=fake_machine(cpu_count=4))
        strategies = {c.strategy for c in plan.candidates}
        assert {"stream", "stream_threaded", "sharded"} <= strategies

    def test_plan_disable_degrades_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_DISABLE", "1")
        w = Workload(nbytes=64 << 20, dtype="int64")
        plan = plan_scan(w, machine=fake_machine(cpu_count=8))
        assert plan.chosen.strategy == "serial"
        assert "REPRO_PLAN_DISABLE" in plan.reason
        assert session_threads("int64") is None

    def test_tune_disable_still_plans_on_static_heuristics(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_DISABLE", "1")
        _reset_machine_memo()
        w = Workload(nbytes=8 << 20, dtype="int64")
        plan = plan_scan(w)  # real snapshot: must not raise, must not measure
        assert plan.chosen.throughput_source == "model"
        x = np.arange(1000, dtype=np.int64)
        assert np.array_equal(repro.scan(x), prefix_sum_serial(x))

    def test_feedback_loop_turns_model_into_measured(self):
        w = Workload(nbytes=8 << 20, dtype="int64")
        machine = fake_machine(cpu_count=1)
        store = get_store()
        first = plan_scan(w, machine=machine, store=store)
        assert not first.cache_hit
        assert first.observe(seconds=0.004)
        second = plan_scan(w, machine=machine, store=store)
        assert second.cache_hit
        assert second.chosen.throughput_source == "measured"
        # the measured rate is what we reported: nbytes / seconds
        key = second.chosen.calibration_key(w)
        assert store.throughput(key) == pytest.approx(w.nbytes / 0.004)

    def test_anchored_model_never_beats_measurement_with_optimism(self):
        # After an honest (slow) stream measurement, the sharded model
        # must be re-anchored to it rather than keeping the optimistic
        # default rate and "winning" on paper.
        w = Workload(nbytes=64 << 20, dtype="int64", source="file")
        machine = fake_machine(cpu_count=4)
        store = get_store()
        store.observe(w.calibration_key("stream"), 1e8)  # slow disk
        plan = plan_scan(w, machine=machine, store=store)
        stream = next(c for c in plan.candidates if c.strategy == "stream")
        sharded = next(c for c in plan.candidates if c.strategy == "sharded")
        # sharded may still win on parallelism, but only by its modeled
        # relative edge, not by an order-of-magnitude absolute fantasy.
        assert sharded.predicted_seconds > stream.predicted_seconds / 8

    def test_force_unsafe_strategy_rejected(self):
        w = Workload.from_array(np.ones(200_000, dtype=np.float64))
        with pytest.raises(ValueError, match="cannot force"):
            plan_scan(w, machine=fake_machine(), force="threaded:2")

    def test_forced_strategy_is_synthesized_when_gated_out(self):
        w = Workload(nbytes=1 << 20, dtype="int64")  # far below pool floor
        plan = plan_scan(w, machine=fake_machine(cpu_count=8), force="parallel:2")
        assert plan.chosen.label == "parallel:2"
        assert "forced" in plan.reason

    def test_counters_record_plans(self):
        before = PLANNER_COUNTERS.plans
        plan_scan(Workload(nbytes=8 << 20, dtype="int64"),
                  machine=fake_machine(cpu_count=1))
        assert PLANNER_COUNTERS.plans == before + 1
        assert PLANNER_COUNTERS.last_strategy == "serial"
        assert PLANNER_COUNTERS.to_dict()["by_strategy"]["serial"] >= 1


# -- execution: bit-identity through every dispatch arm ----------------------


class TestAutoScan:
    def test_flagless_scan_matches_reference(self, rng):
        for dtype in (np.int32, np.int64, np.uint64):
            for op in ("add", "max", "xor"):
                values = make_int_array(rng, 4097, dtype=dtype)
                got = repro.scan(values, op=op)
                assert np.array_equal(got, prefix_sum_serial(values, op=op))

    def test_flagless_prefix_sum_higher_order_tuples(self, rng):
        values = make_int_array(rng, 6000, dtype=np.int64)
        got = repro.prefix_sum(values, order=3, tuple_size=2)
        assert np.array_equal(
            got, prefix_sum_serial(values, order=3, tuple_size=2)
        )

    def test_empty_input(self):
        out = repro.scan(np.array([], dtype=np.int64))
        assert out.size == 0 and out.dtype == np.int64

    def test_engine_auto_string_is_the_planner(self, rng):
        values = make_int_array(rng, 1000, dtype=np.int64)
        got = repro.scan(values, engine="auto")
        assert np.array_equal(got, prefix_sum_serial(values))

    def test_forced_arms_agree_with_reference(self, rng):
        values = make_int_array(rng, 5003, dtype=np.int64)
        want = prefix_sum_serial(values, order=2, tuple_size=3)
        for force in ("serial", "threaded:2", "threaded:3"):
            got = auto_scan(values, order=2, tuple_size=3, force=force)
            assert np.array_equal(got, want), force

    def test_float_input_plans_serial_and_matches(self, rng):
        values = rng.standard_normal(4096)
        got = repro.scan(values)
        assert np.array_equal(got, prefix_sum_serial(values))

    def test_custom_unregistered_op_plans_serial_and_matches(self, rng):
        # An op object the registry has never seen must survive the
        # planner round-trip verbatim (serial-only, original callable).
        from repro.ops import AssociativeOp

        custom = AssociativeOp(
            "local_even_add",
            fn=lambda a, b: np.asarray(a) + np.asarray(b),
            identity_fn=lambda dt: 0,
        )
        values = make_int_array(rng, 3000, dtype=np.int64)
        got = repro.scan(values, op=custom)
        assert np.array_equal(got, prefix_sum_serial(values, op="add"))

    def test_explicit_engine_still_wins_over_planner(self, rng):
        values = make_int_array(rng, 1000, dtype=np.int32)
        got = repro.scan(values, engine="host")
        assert np.array_equal(got, prefix_sum_serial(values))


# -- explain -----------------------------------------------------------------


class TestExplain:
    def test_explain_values_table(self):
        plan = repro.explain(np.ones(200_000, dtype=np.int64))
        text = plan.explain()
        assert "strategy" in text and "predicted" in text
        assert plan.chosen.label in text
        assert str(plan) == text

    def test_explain_by_shape_without_data(self):
        plan = explain_scan(nbytes=32 << 20, dtype="int64", source="file")
        assert plan.workload.source == "file"
        assert plan.chosen.strategy in ("stream", "stream_threaded", "sharded")

    def test_explain_needs_a_workload(self):
        with pytest.raises(ValueError):
            repro.explain()

    def test_cli_explain_runs_nothing(self, tmp_path, rng, capsys):
        from repro.__main__ import main

        raw = tmp_path / "in.bin"
        out = tmp_path / "out.bin"
        make_int_array(rng, 1000, dtype=np.int32).tofile(raw)
        assert main(["scan", str(raw), str(out), "--explain"]) == 0
        assert not out.exists()  # nothing ran
        assert "planner:" in capsys.readouterr().out
        assert main(["stream", str(raw), str(out), "--explain"]) == 0
        assert not out.exists()


# -- flag-less scan_file + resume pinning ------------------------------------


class TestScanFilePlanned:
    def test_flagless_scan_file_matches_and_stamps_counters(self, tmp_path, rng):
        values = make_int_array(rng, 100_000, dtype=np.int32)
        src, dst = tmp_path / "in.bin", tmp_path / "out.bin"
        values.tofile(src)
        result = repro.scan_file(str(src), str(dst), dtype="int32")
        assert np.array_equal(
            np.fromfile(dst, dtype=np.int32), prefix_sum_serial(values)
        )
        c = result.counters
        assert c.planner_strategy != ""
        assert c.planner_cache_hits + c.planner_cache_misses == 1

    def test_pinned_knobs_bypass_the_planner(self, tmp_path, rng):
        values = make_int_array(rng, 50_000, dtype=np.int32)
        src, dst = tmp_path / "in.bin", tmp_path / "out.bin"
        values.tofile(src)
        result = repro.scan_file(str(src), str(dst), dtype="int32", shards=2)
        assert result.counters.planner_strategy == ""
        assert np.array_equal(
            np.fromfile(dst, dtype=np.int32), prefix_sum_serial(values)
        )

    def test_feedback_lands_in_the_store(self, tmp_path, rng):
        values = make_int_array(rng, 100_000, dtype=np.int32)
        src, dst = tmp_path / "in.bin", tmp_path / "out.bin"
        values.tofile(src)
        repro.scan_file(str(src), str(dst), dtype="int32")
        plan = plan_file_scan(str(src), "int32")
        assert plan.cache_hit  # the first run's throughput was recorded

    def test_resume_pins_driver_family_to_the_checkpoint(self, tmp_path, rng):
        from repro.api import _pinned_resume_strategy
        from repro.stream.checkpoint import CHECKPOINT_KIND, MANIFEST_KIND

        ckpt = tmp_path / "job.ckpt"
        ckpt.write_text(json.dumps({"kind": MANIFEST_KIND,
                                    "shards": [{}, {}, {}]}))
        assert _pinned_resume_strategy(str(ckpt)) == ("sharded", 3)
        ckpt.write_text(json.dumps({"kind": CHECKPOINT_KIND}))
        assert _pinned_resume_strategy(str(ckpt)) == ("stream", None)
        ckpt.write_text("{nonsense")
        assert _pinned_resume_strategy(str(ckpt)) is None

    def test_resumed_sharded_job_completes_on_sharded_driver(self, tmp_path, rng):
        # Interrupt a job pinned to the sharded driver, then finish it
        # flag-less: the planner must respect the manifest, not re-plan.
        from repro.stream import StreamError, scan_file_sharded

        values = make_int_array(rng, 120_000, dtype=np.int32)
        src, dst = tmp_path / "in.bin", tmp_path / "out.bin"
        ckpt = tmp_path / "job.ckpt"
        values.tofile(src)
        with pytest.raises(StreamError):
            scan_file_sharded(str(src), str(dst), dtype="int32", shards=3,
                              checkpoint=str(ckpt), fail_after_shards=1)
        assert ckpt.exists()
        result = repro.scan_file(str(src), str(dst), dtype="int32",
                                 checkpoint=str(ckpt), resume=True)
        assert result.counters.shards > 0  # ran on the sharded driver
        assert np.array_equal(
            np.fromfile(dst, dtype=np.int32), prefix_sum_serial(values)
        )


# -- session threads + counters ----------------------------------------------


class TestSessionAndCounters:
    def test_session_threads_needs_cores_and_safe_config(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        _reset_machine_memo()
        assert session_threads("int64", "add") == "auto"
        assert session_threads("float64", "add") is None
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert session_threads("int64", "add") is None

    def test_stream_counters_roundtrip_planner_fields(self):
        c = StreamCounters(
            planner_cache_hits=2, planner_cache_misses=1,
            planner_feedback_updates=3, planner_strategy="sharded:4",
        )
        restored = StreamCounters.from_dict(c.to_dict())
        assert restored == c

    def test_aggregate_merges_planner_strategy(self):
        a = StreamCounters(planner_strategy="stream", planner_cache_hits=1)
        b = StreamCounters(planner_strategy="stream")
        total = StreamCounters.aggregate([a, b])
        assert total.planner_strategy == "stream"
        assert total.planner_cache_hits == 1
        mixed = StreamCounters.aggregate(
            [a, StreamCounters(planner_strategy="sharded:2")]
        )
        assert mixed.planner_strategy == "mixed"
