"""Tests for the warp-level strided scans and the faithful tuple path."""

import numpy as np
import pytest

from conftest import make_int_array
from repro.core.localscan import (
    lane_totals,
    strided_inclusive_scan,
    warp_faithful_strided_chunk_scan,
)
from repro.gpusim.block import BlockContext
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.spec import TITAN_X
from repro.gpusim.warp import WARP_SIZE, Warp
from repro.ops import ADD, MAX, XOR


def _ctx(threads=64):
    return BlockContext(0, 1, TITAN_X, GlobalMemory(), threads_per_block=threads)


class TestWarpStridedScan:
    @pytest.mark.parametrize("stride", [1, 2, 3, 4, 5, 8, 16, 31, 32, 40])
    def test_matches_residue_class_scan(self, rng, stride):
        warp = Warp(0)
        values = rng.integers(-50, 50, WARP_SIZE).astype(np.int64)
        got = warp.strided_inclusive_scan(values, ADD, stride)
        expected = values.copy()
        for i in range(stride, WARP_SIZE):
            expected[i] = expected[i - stride] + expected[i]
        assert np.array_equal(got, expected)

    def test_stride_1_equals_plain_scan(self, rng):
        warp = Warp(0)
        values = rng.integers(-9, 9, WARP_SIZE).astype(np.int32)
        assert np.array_equal(
            warp.strided_inclusive_scan(values, ADD, 1),
            warp.inclusive_scan(values, ADD),
        )

    def test_stride_at_warp_size_is_copy(self, rng):
        warp = Warp(0)
        values = rng.integers(-9, 9, WARP_SIZE).astype(np.int32)
        assert np.array_equal(
            warp.strided_inclusive_scan(values, ADD, WARP_SIZE), values
        )

    def test_step_count_shrinks_with_stride(self):
        values = np.ones(WARP_SIZE, dtype=np.int32)
        warp1 = Warp(0)
        warp1.strided_inclusive_scan(values, ADD, 1)
        warp8 = Warp(0)
        warp8.strided_inclusive_scan(values, ADD, 8)
        assert warp1.stats.shuffles == 5  # log2(32)
        assert warp8.stats.shuffles == 2  # deltas 8, 16

    def test_invalid_stride(self):
        with pytest.raises(ValueError, match="stride"):
            Warp(0).strided_inclusive_scan(np.zeros(WARP_SIZE, dtype=np.int32), ADD, 0)

    @pytest.mark.parametrize("op", [MAX, XOR], ids=lambda op: op.name)
    def test_other_operators(self, rng, op):
        warp = Warp(0)
        values = rng.integers(1, 100, WARP_SIZE).astype(np.int32)
        got = warp.strided_inclusive_scan(values, op, 3)
        expected = values.copy()
        for i in range(3, WARP_SIZE):
            expected[i] = op.apply(expected[i - 3 : i - 2], expected[i : i + 1])[0]
        assert np.array_equal(got, expected)


class TestLaneTotals:
    @pytest.mark.parametrize("offset", [0, 1, 5])
    @pytest.mark.parametrize("tuple_size", [1, 2, 3, 7])
    def test_matches_strided_scan_sums(self, rng, offset, tuple_size):
        values = rng.integers(-20, 20, 100).astype(np.int32)
        scanned, sums = strided_inclusive_scan(values, offset, tuple_size, ADD)
        assert np.array_equal(lane_totals(scanned, offset, tuple_size, ADD), sums)

    def test_absent_lane_gets_identity(self):
        scanned = np.array([5], dtype=np.int32)
        totals = lane_totals(scanned, 0, 3, ADD)
        assert totals.tolist() == [5, 0, 0]


class TestFaithfulStridedChunkScan:
    @pytest.mark.parametrize("tuple_size", [2, 3, 5, 8, 16, 33])
    @pytest.mark.parametrize("n", [1, 63, 64, 65, 200, 500])
    def test_matches_vector_path(self, rng, tuple_size, n):
        values = rng.integers(-50, 50, n).astype(np.int32)
        ctx = _ctx(64)
        faithful = warp_faithful_strided_chunk_scan(ctx, values, 0, tuple_size, ADD)
        vector, _ = strided_inclusive_scan(values, 0, tuple_size, ADD)
        assert np.array_equal(faithful, vector)

    @pytest.mark.parametrize("offset", [1, 7, 100])
    def test_nonzero_offsets(self, rng, offset):
        values = rng.integers(-50, 50, 300).astype(np.int64)
        ctx = _ctx(64)
        faithful = warp_faithful_strided_chunk_scan(ctx, values, offset, 3, ADD)
        vector, _ = strided_inclusive_scan(values, offset, 3, ADD)
        assert np.array_equal(faithful, vector)

    def test_max_operator_with_padding(self, rng):
        # Partial tiles are identity-padded; MAX's identity is INT_MIN.
        values = rng.integers(-50, 50, 130).astype(np.int32)
        ctx = _ctx(64)
        faithful = warp_faithful_strided_chunk_scan(ctx, values, 0, 4, MAX)
        vector, _ = strided_inclusive_scan(values, 0, 4, MAX)
        assert np.array_equal(faithful, vector)

    def test_uses_barriers_and_shuffles(self, rng):
        values = rng.integers(-5, 5, 128).astype(np.int32)
        ctx = _ctx(64)
        warp_faithful_strided_chunk_scan(ctx, values, 0, 2, ADD)
        assert ctx.stats.barriers >= 4  # two per tile
        assert ctx.stats.shuffles > 0
        assert ctx.stats.shared_words_written > 0

    def test_delegates_to_plain_path_for_s1(self, rng):
        values = rng.integers(-5, 5, 100).astype(np.int32)
        ctx = _ctx(64)
        got = warp_faithful_strided_chunk_scan(ctx, values, 0, 1, ADD)
        vector, _ = strided_inclusive_scan(values, 0, 1, ADD)
        assert np.array_equal(got, vector)
