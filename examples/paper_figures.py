"""Regenerate every table and figure of the paper's evaluation section.

Prints Table 1 and all fourteen figures (3-16) as text tables from the
calibrated performance model, followed by the paper's headline claims
with the model's measured value for each.

Run:  python examples/paper_figures.py            # everything
      python examples/paper_figures.py fig07      # one figure
"""

import sys

from repro.harness import (
    FIGURES,
    format_figure,
    format_table1,
    generate_figure,
    render_sparklines,
    run_headline_checks,
)


def main(argv):
    wanted = argv[1:] or ["table1"] + sorted(FIGURES)
    for target in wanted:
        if target == "table1":
            print(format_table1())
        else:
            data = generate_figure(target)
            print(format_figure(data))
            print()
            print(render_sparklines(data))
        print()

    print("=" * 72)
    print("headline claims (paper text vs model):")
    shown = set(wanted)
    for result in run_headline_checks():
        if result["figure"] not in shown:
            continue
        status = "ok " if result["passed"] else "FAIL"
        print(f"[{status}] {result['figure']}: {result['paper_claim']}")
        print(f"       model: {result['measured']}")


if __name__ == "__main__":
    main(sys.argv)
