"""The classic scan applications from the paper's introduction.

Section 1: "Examples include radix sort, quicksort, lexical analysis,
polynomial evaluation, stream compaction, histograms, and string
comparison."  This example runs the library's implementations of those
applications — each one is scans all the way down.

Run:  python examples/scan_applications.py
"""

import numpy as np

from repro.apps import (
    linear_recurrence,
    polynomial_evaluate_prefixes,
    radix_sort_with_indices,
    rle_decode,
    rle_encode,
    segment_flags_from_lengths,
    segmented_scan,
    simple_lexer,
    stream_compact,
)


def main():
    rng = np.random.default_rng(0)

    # --- lexical analysis: a parallel DFA tokenizer -------------------
    program = "total = 0; for item_3 in items9 { total = total + item_3 }"
    tokens = simple_lexer(program)
    print("parallel lexer (Ladner-Fischer composition scan):")
    print("  " + " ".join(f"{kind}:{text}" for kind, text in tokens[:8]) + " ...")
    print(f"  {len(tokens)} tokens from {len(program)} characters in "
          "log2(n) vectorized FSM-composition passes")

    # --- radix sort: histogram + exclusive scan per digit --------------
    keys = rng.integers(-(10**9), 10**9, 100_000).astype(np.int64)
    sorted_keys, perm = radix_sort_with_indices(keys)
    assert np.array_equal(sorted_keys, np.sort(keys))
    print(f"\nradix sort: {len(keys):,} signed int64 keys sorted "
          "(stable, scan-based scatter offsets)")

    # --- stream compaction ---------------------------------------------
    values = rng.integers(0, 1000, 50_000)
    kept = stream_compact(values, values % 13 == 0)
    print(f"\nstream compaction: kept {len(kept):,} of {len(values):,} "
          "elements at scan-computed positions")

    # --- run-length coding ----------------------------------------------
    noisy = rng.choice([0, 0, 0, 1], size=20_000)
    run_values, run_lengths = rle_encode(noisy)
    assert np.array_equal(rle_decode(run_values, run_lengths), noisy)
    print(f"\nrun-length coding: {len(noisy):,} values <-> "
          f"{len(run_values):,} runs (decode = exclusive scan + max-scan fill)")

    # --- segmented scans -------------------------------------------------
    lengths = [5, 3, 8, 4]
    flags = segment_flags_from_lengths(lengths)
    data = np.arange(1, sum(lengths) + 1, dtype=np.int32)
    print("\nsegmented sums over segments of lengths", lengths, ":")
    print("  ", segmented_scan(data, flags).tolist())

    # --- polynomial evaluation (Horner as an affine scan) ----------------
    coefficients = np.array([2, -3, 0, 5], dtype=np.int64)  # 2x^3 - 3x^2 + 5
    horner = polynomial_evaluate_prefixes(coefficients, 7)
    print(f"\npolynomial 2x^3 - 3x^2 + 5 at x=7: {horner[-1]} "
          f"(Horner intermediates {horner.tolist()})")

    # --- a linear recursive filter (Section 3's generalization) ----------
    signal = rng.normal(0, 1, 10).round(2)
    smooth = linear_recurrence(np.full(10, 0.8), 0.2 * signal)
    print("\nfirst-order IIR smoother y = 0.8*y' + 0.2*x via the affine scan:")
    print("  x:", signal.tolist())
    print("  y:", [round(float(v), 3) for v in smooth])


if __name__ == "__main__":
    main()
