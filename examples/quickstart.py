"""Quickstart: the generalized prefix-sum library in five minutes.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.core import SamScan
from repro.gpusim import TITAN_X


def main():
    # --- 1. The paper's Section 1 example: delta coding -------------
    values = np.array([1, 2, 3, 4, 5, 2, 4, 6, 8, 10], dtype=np.int32)
    diffs = repro.delta_encode(values)
    decoded = repro.prefix_sum(diffs)
    print("input values:", values.tolist())
    print("differences: ", diffs.tolist())
    print("prefix sum:  ", decoded.tolist(), "(delta decoding)")
    assert np.array_equal(decoded, values)

    # --- 2. Higher-order prefix sums --------------------------------
    second_order = repro.delta_encode(values, order=2)
    print("\n2nd-order diff:", second_order.tolist())
    print("2nd-order sum: ", repro.prefix_sum(second_order, order=2).tolist())

    # --- 3. Tuple-based prefix sums ----------------------------------
    # Interleaved (x, y) pairs: each lane scans independently.
    xy = np.array([1, 10, 2, 20, 3, 30], dtype=np.int32)
    print("\ntuple scan:    ", repro.prefix_sum(xy, tuple_size=2).tolist())

    # --- 4. General scans (any associative operator) -----------------
    data = np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=np.int32)
    print("\nmax scan:      ", repro.scan(data, op="max").tolist())
    print("exclusive sum: ", repro.scan(data, inclusive=False).tolist())

    # --- 5. The same math on the simulated GPU -----------------------
    engine = SamScan(spec=TITAN_X, threads_per_block=128, items_per_thread=2)
    big = np.random.default_rng(0).integers(-100, 100, 100_000).astype(np.int32)
    result = engine.run(big, order=2, tuple_size=3)
    host = repro.prefix_sum(big, order=2, tuple_size=3)
    assert np.array_equal(result.values, host)
    print(
        f"\nSAM on simulated {TITAN_X.name}: {len(big):,} elements, "
        f"order 2, 3-tuples -> {result.words_per_element():.2f} global words "
        f"per element across {result.num_chunks} chunks "
        f"({result.stats.kernel_launches} kernel launch)"
    )
    print("bit-identical to the host library: OK")


if __name__ == "__main__":
    main()
