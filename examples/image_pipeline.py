"""An image-processing pipeline built on the generalized prefix sums.

Summed-area tables were among the first GPU scan applications the paper
cites ([13]), and histograms are on its §1 list.  This example runs a
small synthetic-image pipeline:

1. a summed-area table — whose column pass is a *tuple-based* prefix
   sum of the row-major pixel buffer (tuple_size = image width, no
   transpose), i.e. a direct application of the paper's generalization;
2. O(1) box-filter smoothing from the SAT;
3. histogram equalization via a prefix sum over the histogram (CDF).

Run:  python examples/image_pipeline.py
"""

import numpy as np

from repro.apps import (
    box_sum,
    histogram,
    histogram_equalization_map,
    summed_area_table,
)
from repro.core import SamScan
from repro.gpusim import TITAN_X


def synth_image(height=96, width=128, seed=5) -> np.ndarray:
    """A dim, low-contrast gradient with a bright blob and noise."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    gradient = 40 + 30 * xx / width
    blob = 80 * np.exp(-(((yy - 30) / 12.0) ** 2 + ((xx - 90) / 18.0) ** 2))
    noise = rng.normal(0, 3, (height, width))
    return np.clip(gradient + blob + noise, 0, 255).astype(np.int64)


def box_filter(image: np.ndarray, radius: int) -> np.ndarray:
    """Mean filter with O(1) work per pixel from the SAT."""
    height, width = image.shape
    sat = summed_area_table(image)
    out = np.empty_like(image)
    for y in range(height):
        top, bottom = max(0, y - radius), min(height - 1, y + radius)
        for x in range(width):
            left, right = max(0, x - radius), min(width - 1, x + radius)
            area = (bottom - top + 1) * (right - left + 1)
            out[y, x] = box_sum(sat, top, left, bottom, right) // area
    return out


def main():
    image = synth_image()
    height, width = image.shape
    print(f"image: {height}x{width}, range [{image.min()}, {image.max()}]")

    # --- SAT via the tuple generalization, on the simulated GPU ------
    engine = SamScan(spec=TITAN_X, threads_per_block=128, items_per_thread=2)
    sat = summed_area_table(image, engine=engine)
    assert np.array_equal(sat, image.cumsum(axis=0).cumsum(axis=1))
    print(
        f"\nsummed-area table: column pass ran as ONE tuple-based prefix "
        f"sum with tuple_size = {width} on the simulated {TITAN_X.name} "
        "(row-major, no transpose)"
    )
    total = box_sum(sat, 0, 0, height - 1, width - 1)
    print(f"  total intensity via SAT corner: {total:,} "
          f"(direct sum: {image.sum():,})")

    # --- O(1) box filtering -------------------------------------------
    smoothed = box_filter(image, radius=3)
    print(f"\nbox filter (r=3): noise std "
          f"{np.std(image - smoothed):.2f} removed per pixel, "
          "each output pixel from 4 SAT lookups")

    # --- histogram equalization (CDF = prefix sum) ---------------------
    counts = histogram(image.reshape(-1), 256)
    remap = histogram_equalization_map(image.reshape(-1), 256)
    equalized = remap[image]
    print(
        f"\nhistogram equalization: input used {np.count_nonzero(counts)} "
        f"of 256 levels in [{image.min()}, {image.max()}]; output spans "
        f"[{equalized.min()}, {equalized.max()}]"
    )
    spread_before = image.max() - image.min()
    spread_after = equalized.max() - equalized.min()
    assert spread_after >= spread_before
    print("  contrast stretched by the CDF prefix sum")


if __name__ == "__main__":
    main()
