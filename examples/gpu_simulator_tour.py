"""A tour of the GPU execution-model simulator and its traffic counters.

Reproduces, from *measured counts* rather than the analytic model, the
communication story of Sections 2-3: SAM and decoupled-lookback (CUB)
move 2n words, reduce-then-scan (MGPU) 3n, the three-phase approach
(Thrust/CUDPP) 4n; iterated higher orders multiply everyone's traffic
except SAM's; and tuple data types break CUB's coalescing while SAM's
strided kernel keeps its transactions flat.

Run:  python examples/gpu_simulator_tour.py
"""

import numpy as np

from repro.baselines import DecoupledLookbackScan, ReduceThenScan, ThreePhaseScan
from repro.core import SamScan
from repro.gpusim import TITAN_X

N = 32_768
KW = dict(threads_per_block=128, items_per_thread=2)


def engines():
    return [
        ("SAM", SamScan(spec=TITAN_X, num_blocks=8, **KW)),
        ("CUB (lookback)", DecoupledLookbackScan(spec=TITAN_X, **KW)),
        ("MGPU (reduce-scan)", ReduceThenScan(spec=TITAN_X, **KW)),
        ("Thrust (3-phase)", ThreePhaseScan(spec=TITAN_X, **KW)),
    ]


def main():
    values = np.random.default_rng(0).integers(-1000, 1000, N).astype(np.int32)

    # --- 1. the 2n / 3n / 4n table -----------------------------------
    print(f"measured global-memory traffic, n = {N:,} int32\n")
    print(f"{'engine':>20} {'words/elem':>11} {'launches':>9} {'barriers':>9}")
    for name, engine in engines():
        result = engine.run(values)
        stats = result.stats
        print(
            f"{name:>20} {result.words_per_element():>11.2f} "
            f"{stats.kernel_launches:>9} {stats.barriers:>9}"
        )

    # --- 2. higher orders: iterate the stage, not the scan -----------
    print("\nwords/element by order (SAM iterates only its computation stage):")
    sam = SamScan(spec=TITAN_X, num_blocks=8, **KW)
    cub = DecoupledLookbackScan(spec=TITAN_X, **KW)
    print(f"{'order':>6} {'SAM':>7} {'CUB':>7}")
    for order in (1, 2, 4, 8):
        s = sam.run(values, order=order).words_per_element()
        c = cub.run(values, order=order).words_per_element()
        print(f"{order:>6} {s:>7.2f} {c:>7.2f}")

    # --- 3. tuples: strided summation keeps coalescing ---------------
    print("\nread transactions by tuple size (lower = better coalescing):")
    print(f"{'s':>4} {'SAM':>8} {'CUB':>8}")
    for s in (1, 2, 4, 8):
        n = N - N % s
        sam_txn = sam.run(values[:n], tuple_size=s).stats.global_read_transactions
        cub_txn = cub.run(values[:n], tuple_size=s).stats.global_read_transactions
        print(f"{s:>4} {sam_txn:>8} {cub_txn:>8}")

    # --- 4. carry schemes under a hostile schedule --------------------
    print("\nfailed flag polls per chunk (reversed block schedule):")
    for scheme in ("decoupled", "chained"):
        engine = SamScan(
            spec=TITAN_X, num_blocks=8, carry_scheme=scheme, policy="reversed", **KW
        )
        result = engine.run(values)
        print(
            f"  {scheme:>10}: "
            f"{result.stats.failed_flag_polls / result.num_chunks:6.2f}"
        )
    print(
        "\nthe decoupled scheme publishes before reading, so a hostile\n"
        "schedule stalls it far less — Section 2.2's latency-hiding trade."
    )


if __name__ == "__main__":
    main()
