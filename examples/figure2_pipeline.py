"""Reconstruct the paper's Figure 2 from an actual simulation trace.

Figure 2 shows the "pipelined processing of chunks in SAM and
constant-time carry computation in persistent thread blocks": block b
processes chunks b, b+k, b+2k, ...; each chunk publishes its local sum
S_i, then resolves Carry_i from the predecessors' sums.  This example
runs SAM on the simulator with a tracer attached and renders exactly
that diagram — first under the friendly round-robin block schedule,
then under a hostile reversed schedule where the staggering (blocks
*waiting* for their predecessors' sums) becomes visible.

Run:  python examples/figure2_pipeline.py
"""

import numpy as np

from repro.core import SamScan
from repro.gpusim import Tracer, render_pipeline, summarize_stagger

NUM_BLOCKS = 4
CHUNKS = 12


def run_traced(policy: str) -> Tracer:
    tracer = Tracer()
    engine = SamScan(
        threads_per_block=32,
        items_per_thread=1,
        num_blocks=NUM_BLOCKS,
        policy=policy,
        tracer=tracer,
    )
    values = np.arange(32 * CHUNKS, dtype=np.int32)
    result = engine.run(values)
    assert np.array_equal(result.values, np.cumsum(values, dtype=np.int32))
    return tracer


def main():
    print("=" * 64)
    print("Figure 2, reconstructed: round-robin schedule")
    print("=" * 64)
    tracer = run_traced("round_robin")
    print(render_pipeline(tracer, NUM_BLOCKS, max_rows=24))
    print()
    print(summarize_stagger(tracer, NUM_BLOCKS))

    print()
    print("=" * 64)
    print("Same kernel, hostile (reversed) schedule: waits appear")
    print("=" * 64)
    tracer = run_traced("reversed")
    print(render_pipeline(tracer, NUM_BLOCKS, max_rows=24))
    print()
    print(summarize_stagger(tracer, NUM_BLOCKS))
    waits = [e for e in tracer.events if e.action == "wait"]
    print(
        f"\n{len(waits)} wait events: blocks polled not-yet-ready flags "
        "and yielded — the latency SAM's write-then-independent-reads "
        "scheme is designed to hide (Section 2.2)."
    )


if __name__ == "__main__":
    main()
