"""Delta compression of a speech-like waveform — the paper's motivation.

Section 1: delta encoding "is ... especially [used] in speech
compression, where several international standards exist that are based
on it, e.g., G.726", and delta *decoding* is the prefix sum, which is
what makes parallel decompression possible.

This example compresses a synthetic speech-band waveform with the full
pipeline (order-selected delta model + zigzag/varint coder) and then
decodes it three ways — serial reference, vectorized host library, and
SAM on the simulated GPU — verifying bit-identical output.

Run:  python examples/delta_compression.py
"""

import numpy as np

from repro.compression import DeltaCodec, choose_model
from repro.compression.codec import residual_cost_bytes
from repro.core import SamScan
from repro.gpusim import TITAN_X
from repro.reference import prefix_sum_serial


def synth_speech(n=50_000, seed=7) -> np.ndarray:
    """A 16-bit-ish waveform: a few slowly-modulated harmonics + noise."""
    rng = np.random.default_rng(seed)
    t = np.arange(n) / 8000.0  # 8 kHz sample rate, like G.726
    envelope = 0.5 + 0.5 * np.sin(2 * np.pi * 1.3 * t)
    wave = (
        6000 * envelope * np.sin(2 * np.pi * 220 * t)
        + 2500 * envelope * np.sin(2 * np.pi * 447 * t)
        + 900 * np.sin(2 * np.pi * 995 * t)
        + rng.normal(0, 30, n)
    )
    return wave.astype(np.int32)


def main():
    signal = synth_speech()
    raw_bytes = signal.size * signal.dtype.itemsize
    print(f"waveform: {signal.size:,} samples, {raw_bytes:,} bytes raw")

    # --- model selection: which delta order predicts speech best? ----
    print("\ncoder cost by model order (lower is better):")
    for order in (1, 2, 3):
        cost = residual_cost_bytes(signal, order, 1)
        print(f"  order {order}: {cost:,} bytes")
    best_order, _ = choose_model(signal)
    print(f"selected order: {best_order}")

    # --- compress ------------------------------------------------------
    codec = DeltaCodec()
    blob = codec.compress(signal)
    print(
        f"\ncompressed: {blob.nbytes:,} bytes "
        f"(ratio {blob.ratio():.2f}x, order {blob.order})"
    )

    # --- decode three ways, all bit-identical ---------------------------
    host_decoded = codec.decompress(blob)

    sam_engine = SamScan(spec=TITAN_X, threads_per_block=128, items_per_thread=4)
    sam_codec = DeltaCodec(decode_engine=sam_engine)
    sam_decoded = sam_codec.decompress(blob)

    serial_decoded = prefix_sum_serial(_residuals(codec, blob), order=blob.order)

    assert np.array_equal(host_decoded, signal)
    assert np.array_equal(sam_decoded, signal)
    assert np.array_equal(serial_decoded, signal)
    print("round trip: host, SAM-on-simulator, and serial decoders all exact")

    # --- what the parallel decode cost ---------------------------------
    result = sam_engine.run(_residuals(codec, blob), order=blob.order)
    print(
        f"\nparallel decode on simulated {TITAN_X.name}: "
        f"{result.words_per_element():.2f} global words/element, "
        f"{result.stats.kernel_launches} kernel launch, "
        f"{result.num_chunks} chunks across {result.num_blocks} persistent blocks"
    )


def _residuals(codec: DeltaCodec, blob) -> np.ndarray:
    """Recover the residual array from a blob (coder inverse only)."""
    import numpy as np

    from repro.compression.codec import _HEADER
    from repro.compression.zigzag import varint_decode, zigzag_decode

    parsed = codec.parse_header(blob.data)
    unsigned = np.uint32 if parsed.dtype.itemsize == 4 else np.uint64
    encoded = varint_decode(blob.data[_HEADER.size:], parsed.count, dtype=unsigned)
    return zigzag_decode(encoded).astype(parsed.dtype)


if __name__ == "__main__":
    main()
