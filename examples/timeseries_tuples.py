"""Tuple-based prefix sums on interleaved telemetry streams.

Section 1: "data often appear in tuples ... values from the same
location within the tuples correlate more with each other than values
from different locations.  Effective delta encoders take this into
account".

This example builds an interleaved (x, y, altitude) GPS-like track,
shows that the tuple-aware model compresses far better than the naive
one (which mixes unrelated lanes), and decodes with SAM's strided
tuple kernel on the simulated GPU.

Run:  python examples/timeseries_tuples.py
"""

import numpy as np

import repro
from repro.compression import DeltaCodec
from repro.core import SamScan
from repro.gpusim import TITAN_X


def synth_track(points=20_000, seed=11) -> np.ndarray:
    """Interleaved (x, y, alt) samples of a smooth random walk."""
    rng = np.random.default_rng(seed)
    x = 500_000 + np.cumsum(rng.integers(-4, 5, points))       # UTM-ish metres
    y = 4_000_000 + np.cumsum(rng.integers(-4, 5, points))
    alt = 1200 + np.cumsum(rng.integers(-1, 2, points))
    track = np.empty(points * 3, dtype=np.int64)
    track[0::3], track[1::3], track[2::3] = x, y, alt
    return track


def main():
    track = synth_track()
    print(f"track: {track.size // 3:,} points, {track.nbytes:,} bytes raw")

    # --- naive vs tuple-aware delta model ---------------------------
    codec = DeltaCodec()
    naive = codec.compress(track, order=1, tuple_size=1)
    aware = codec.compress(track, order=1, tuple_size=3)
    print(f"\nnaive model  (s=1): {naive.nbytes:,} bytes ({naive.ratio():.2f}x)")
    print(f"tuple model  (s=3): {aware.nbytes:,} bytes ({aware.ratio():.2f}x)")
    print(
        "the naive model mixes x/y/alt lanes, so its residuals jump by "
        "the inter-lane offsets every sample"
    )

    # --- tuple-based decode is s interleaved prefix sums ------------
    engine = SamScan(
        spec=TITAN_X, threads_per_block=128, items_per_thread=2, num_blocks=8
    )
    decoded = DeltaCodec(decode_engine=engine).decompress(aware)
    assert np.array_equal(decoded, track)
    print("\nSAM strided tuple decode on the simulator: exact")

    # --- the strided kernel keeps its coalescing at any s ------------
    for s in (1, 3, 8):
        n = track.size - track.size % s
        result = engine.run(track[:n], tuple_size=s)
        txn = result.stats.global_read_transactions
        print(
            f"  tuple size {s}: {result.words_per_element():.2f} words/element, "
            f"{txn} read transactions (data accesses stay fully coalesced; "
            "the small growth is the s auxiliary sum buffers)"
        )

    # --- and the math composes with higher orders --------------------
    combined = repro.prefix_sum(
        repro.delta_encode(track, order=2, tuple_size=3), order=2, tuple_size=3
    )
    assert np.array_equal(combined, track)
    print("\norder-2 x 3-tuple round trip (the combined generalization): exact")


if __name__ == "__main__":
    main()
